package transport

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"repro/internal/sim"
)

// Errors surfaced by connections.
var (
	// ErrTimeout is returned by Recv when no frame arrives within the
	// deadline. On a simulated link the wait is charged to the virtual
	// clock; on a net.Conn it is a wall-clock read deadline.
	ErrTimeout = errors.New("transport: receive timeout")
	// ErrLinkDown is returned by Send once the link is cut (a hard
	// two-way partition): the peer is unreachable and the connection
	// must be re-dialed.
	ErrLinkDown = errors.New("transport: link down")
)

// Conn is what the session layer in internal/ndmp runs over: a frame
// pipe with a receive deadline. Both the simulated Endpoint and the
// net.Conn adapter implement it.
type Conn interface {
	// Send transmits one encoded frame. A nil error does NOT mean the
	// peer received it — frames on a faulty link vanish silently.
	Send(raw []byte) error
	// Recv returns the next frame, or ErrTimeout after the deadline.
	Recv(timeout time.Duration) ([]byte, error)
	// Close releases the connection.
	Close() error
}

// Params describes the simulated link's performance.
type Params struct {
	// Latency is the fixed per-frame propagation delay.
	Latency time.Duration
	// Rate is the link throughput in bytes/second (0 = infinite).
	Rate float64
}

// DefaultParams models a late-90s backup LAN: 100BASE-T switch hop.
func DefaultParams() Params {
	return Params{Latency: 200 * time.Microsecond, Rate: 12 << 20}
}

// FaultConfig arms seeded network faults on a Link, mirroring
// storage.FaultProfile and tape.FaultConfig: probabilistic faults are
// drawn from a private seeded generator, deterministic schedules fire
// at exact frame counts, and all injected latency is charged to the
// simulated clock.
type FaultConfig struct {
	// Seed initialises the link's private rand.Rand.
	Seed int64
	// Drop is the per-frame probability of silent loss.
	Drop float64
	// Duplicate is the per-frame probability the frame arrives twice.
	Duplicate float64
	// Corrupt is the per-frame probability of in-flight bit damage
	// (the receiver sees a CRC-invalid frame).
	Corrupt float64
	// Reorder is the per-frame probability the frame overtakes the
	// frame queued immediately before it.
	Reorder float64
	// Stall is the per-frame probability of an extra StallFor delay —
	// a congested switch, a retransmitting NIC.
	Stall    float64
	StallFor time.Duration
	// CutAfterFrames lists cumulative frame counts (both directions)
	// at which the link hard-partitions: the triggering frame is lost
	// in flight and every later Send fails with ErrLinkDown until
	// Heal. Sorted ascending; each entry fires once.
	CutAfterFrames []int
	// CorruptAtFrames deterministically corrupts exactly these frames
	// (cumulative count), for scenarios that must see >=1 bad frame.
	CorruptAtFrames []int
	// MaxFaults caps the probabilistic injections; 0 = no cap.
	// Deterministic schedules are exempt.
	MaxFaults int
}

// FaultStats counts injected network faults.
type FaultStats struct {
	Dropped    int
	Duplicated int
	Corrupted  int
	Reordered  int
	Stalled    int
	Cuts       int // hard partitions (scheduled or manual)
}

func (s FaultStats) probTotal() int {
	return s.Dropped + s.Duplicated + s.Corrupted + s.Reordered + s.Stalled
}

// delivery is a frame in flight.
type delivery struct {
	raw     []byte
	readyAt sim.Time
}

// Handler consumes frames at a passive endpoint (the server side) and
// returns encoded response frames to send back.
type Handler func(raw []byte) [][]byte

// Link is a deterministic simulated duplex connection. Endpoint A is
// conventionally the client (data mover), endpoint B the server (tape
// host); B usually has a Handler attached and is driven by A's sends
// and receive waits, which keeps the whole exchange on one virtual
// clock and fully reproducible.
type Link struct {
	mu     sync.Mutex
	params Params
	ends   [2]*Endpoint
	queues [2][]delivery // queues[i] = frames destined for ends[i]

	fc      *FaultConfig
	rng     *rand.Rand
	down    bool
	severed bool
	oneWay [2]bool // oneWay[i]: frames FROM ends[i] silently vanish
	sent   int     // frames offered for transmission, drives schedules
	cutIdx int
	corIdx int
	stats  FaultStats
}

// NewLink creates a healthy link.
func NewLink(p Params) *Link {
	l := &Link{params: p}
	l.ends[0] = &Endpoint{link: l, idx: 0}
	l.ends[1] = &Endpoint{link: l, idx: 1}
	return l
}

// A returns the client-side endpoint, B the server side.
func (l *Link) A() *Endpoint { return l.ends[0] }
func (l *Link) B() *Endpoint { return l.ends[1] }

// Arm enables fault injection according to fc.
func (l *Link) Arm(fc FaultConfig) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.fc = &fc
	l.rng = rand.New(rand.NewSource(fc.Seed))
}

// Stats returns the faults injected so far.
func (l *Link) Stats() FaultStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Down reports whether the link is hard-partitioned.
func (l *Link) Down() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.down
}

// Cut hard-partitions the link in both directions, dropping everything
// in flight. Sends fail with ErrLinkDown until Heal.
func (l *Link) Cut() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.cutLocked()
}

func (l *Link) cutLocked() {
	l.down = true
	l.stats.Cuts++
	l.queues[0] = nil
	l.queues[1] = nil
}

// Sever permanently cuts the link: the host on the far end is gone
// (power pulled, not a cable glitch) and Heal does not restore it.
// Redial helpers that heal transient cuts before dialing use this to
// tell "retry the same host" apart from "fail over to the standby".
func (l *Link) Sever() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.severed = true
	l.cutLocked()
}

// Severed reports whether the link was permanently cut.
func (l *Link) Severed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.severed
}

// PartitionOneWay makes the direction out of the given endpoint a
// black hole: its sends succeed but never arrive — the failure mode
// that heartbeat dead-peer detection exists for. fromA selects the
// A->B direction, otherwise B->A.
func (l *Link) PartitionOneWay(fromA bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if fromA {
		l.oneWay[0] = true
	} else {
		l.oneWay[1] = true
	}
}

// Heal restores a cut or partitioned link. In-flight frames from
// before the outage are gone: a healed link is a fresh connection over
// the same wire, which is why sessions re-handshake after dialing.
func (l *Link) Heal() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.severed {
		return // a dead host does not come back with the cable
	}
	l.down = false
	l.oneWay[0], l.oneWay[1] = false, false
	l.queues[0] = nil
	l.queues[1] = nil
}

// sendLocked applies faults to one frame from ends[from] and enqueues
// surviving copies for the peer. now is the sender's view of virtual
// time. Callers hold l.mu.
func (l *Link) sendLocked(from int, now sim.Time, raw []byte) error {
	if l.down {
		return ErrLinkDown
	}
	l.sent++
	fc := l.fc
	if fc != nil && l.cutIdx < len(fc.CutAfterFrames) && l.sent >= fc.CutAfterFrames[l.cutIdx] {
		// The cable is pulled with this frame in flight: the frame is
		// lost silently, later sends fail fast.
		l.cutIdx++
		l.cutLocked()
		return nil
	}
	if l.oneWay[from] {
		return nil // black hole: the sender cannot tell
	}
	// Delivery times exist only when a simulated clock is attached;
	// a fully untimed link delivers instantly.
	timed := l.ends[0].proc != nil || l.ends[1].proc != nil
	var readyAt sim.Time
	if timed {
		readyAt = now + l.params.Latency
		if l.params.Rate > 0 {
			readyAt += sim.TimeFor(len(raw), l.params.Rate)
		}
	}
	cp := make([]byte, len(raw))
	copy(cp, raw)
	copies := 1
	if fc != nil {
		forceCorrupt := false
		if l.corIdx < len(fc.CorruptAtFrames) && l.sent >= fc.CorruptAtFrames[l.corIdx] {
			l.corIdx++
			forceCorrupt = true
		}
		capped := fc.MaxFaults > 0 && l.stats.probTotal() >= fc.MaxFaults
		if forceCorrupt || (!capped && fc.Corrupt > 0 && l.rng.Float64() < fc.Corrupt) {
			cp[l.rng.Intn(len(cp))] ^= 0xFF
			l.stats.Corrupted++
			capped = fc.MaxFaults > 0 && l.stats.probTotal() >= fc.MaxFaults
		}
		if !capped && fc.Drop > 0 && l.rng.Float64() < fc.Drop {
			l.stats.Dropped++
			return nil
		}
		if !capped && fc.Duplicate > 0 && l.rng.Float64() < fc.Duplicate {
			l.stats.Duplicated++
			copies = 2
		}
		if !capped && fc.Stall > 0 && l.rng.Float64() < fc.Stall {
			l.stats.Stalled++
			if timed {
				readyAt += fc.StallFor
			}
		}
	}
	to := 1 - from
	for c := 0; c < copies; c++ {
		d := delivery{raw: cp, readyAt: readyAt}
		q := l.queues[to]
		if fc != nil && len(q) > 0 && fc.Reorder > 0 && l.rng.Float64() < fc.Reorder &&
			(fc.MaxFaults == 0 || l.stats.probTotal() < fc.MaxFaults) {
			// Overtake the previously queued frame.
			l.stats.Reordered++
			q = append(q, delivery{})
			copy(q[len(q)-1:], q[len(q)-2:])
			q[len(q)-2] = d
		} else {
			q = append(q, d)
		}
		l.queues[to] = q
	}
	return nil
}

// pumpLocked delivers every due frame addressed to a handler-attached
// endpoint and enqueues the handler's responses (which are themselves
// subject to faults). Callers hold l.mu.
func (l *Link) pumpLocked(now sim.Time) {
	for i := 0; i < 2; i++ {
		h := l.ends[i].handler
		if h == nil {
			continue
		}
		for len(l.queues[i]) > 0 && l.queues[i][0].readyAt <= now {
			d := l.queues[i][0]
			l.queues[i] = l.queues[i][1:]
			for _, resp := range h(d.raw) {
				// Response sends reuse the pump's clock; errors (a cut
				// triggered mid-exchange) just lose the response.
				_ = l.sendLocked(i, now, resp)
			}
		}
	}
}

// nextWakeLocked returns the earliest readyAt among frames that can
// actually be delivered next — the HEADS of the queue for endpoint idx
// and of every handler endpoint's queue — and whether one exists.
// Callers hold l.mu.
//
// Only heads count: delivery is strictly FIFO, so a small frame queued
// behind a large one (whose per-byte serialization gives the head a
// later readyAt) cannot overtake it. Waking on the minimum over the
// whole queue scheduled the waiter for an instant at which pumpLocked
// could deliver nothing, and the simulation spun at a frozen virtual
// time.
func (l *Link) nextWakeLocked(idx int) (sim.Time, bool) {
	var best sim.Time
	found := false
	consider := func(t sim.Time) {
		if !found || t < best {
			best, found = t, true
		}
	}
	if q := l.queues[idx]; len(q) > 0 {
		consider(q[0].readyAt)
	}
	for i := 0; i < 2; i++ {
		if l.ends[i].handler != nil {
			if q := l.queues[i]; len(q) > 0 {
				consider(q[0].readyAt)
			}
		}
	}
	return best, found
}

// Endpoint is one side of a Link. An active side Binds a sim process
// (or runs untimed) and uses Send/Recv; a passive side Attaches a
// Handler and is driven by the peer.
type Endpoint struct {
	link    *Link
	idx     int
	proc    *sim.Proc
	handler Handler
}

// Bind attaches the simulated process whose clock this endpoint's
// waits are charged to. A nil proc (the default) runs untimed:
// receive deadlines expire immediately when nothing is deliverable.
func (e *Endpoint) Bind(p *sim.Proc) { e.proc = p }

// Attach registers h as this endpoint's frame consumer. Attached
// endpoints must not call Recv.
func (e *Endpoint) Attach(h Handler) {
	e.link.mu.Lock()
	defer e.link.mu.Unlock()
	e.handler = h
}

func (e *Endpoint) now() sim.Time {
	if e.proc != nil {
		return e.proc.Now()
	}
	return 0
}

// Send implements Conn.
func (e *Endpoint) Send(raw []byte) error {
	l := e.link
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.sendLocked(e.idx, e.now(), raw); err != nil {
		return err
	}
	l.pumpLocked(e.now())
	return nil
}

// Recv implements Conn: it returns the next deliverable frame,
// driving any attached peer handler while it waits. The wait is
// charged to the bound process's virtual clock; an unbound endpoint
// polls and times out immediately when nothing is ready.
func (e *Endpoint) Recv(timeout time.Duration) ([]byte, error) {
	l := e.link
	l.mu.Lock()
	deadline := e.now() + timeout
	for {
		now := e.now()
		l.pumpLocked(now)
		if q := l.queues[e.idx]; len(q) > 0 && (e.proc == nil || q[0].readyAt <= now) {
			raw := q[0].raw
			l.queues[e.idx] = q[1:]
			l.mu.Unlock()
			return raw, nil
		}
		if e.proc == nil {
			l.mu.Unlock()
			return nil, ErrTimeout
		}
		next, ok := l.nextWakeLocked(e.idx)
		if !ok || next > deadline {
			l.mu.Unlock()
			e.proc.WaitUntil(deadline)
			return nil, ErrTimeout
		}
		if next < now {
			next = now
		}
		l.mu.Unlock()
		e.proc.WaitUntil(next)
		l.mu.Lock()
	}
}

// Close implements Conn. The link itself persists (it is the wire, not
// the connection); sessions re-dial over it after faults.
func (e *Endpoint) Close() error { return nil }
