package transport

import (
	"bytes"
	"errors"
	"testing"
)

func TestTransportFrameRoundTrip(t *testing.T) {
	f := &Frame{Type: 3, Flags: 1, Seq: 0xDEADBEEF01, Payload: []byte("ten records of tape")}
	raw := Encode(f)
	got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != f.Type || got.Flags != f.Flags || got.Seq != f.Seq || !bytes.Equal(got.Payload, f.Payload) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, f)
	}
	// Empty payloads are legal (heartbeats).
	raw = Encode(&Frame{Type: 9})
	if got, err = Decode(raw); err != nil || len(got.Payload) != 0 {
		t.Fatalf("empty payload: %v %v", got, err)
	}
}

func TestTransportFrameDetectsDamage(t *testing.T) {
	raw := Encode(&Frame{Type: 2, Seq: 42, Payload: bytes.Repeat([]byte{0xAB}, 64)})
	// Any single flipped byte must fail the decode.
	for i := range raw {
		bad := append([]byte(nil), raw...)
		bad[i] ^= 0xFF
		if _, err := Decode(bad); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("flip at %d not detected: %v", i, err)
		}
	}
	if _, err := Decode(raw[:HeaderSize-1]); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("truncated preamble not detected: %v", err)
	}
	if _, err := Decode(raw[:len(raw)-3]); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("truncated payload not detected: %v", err)
	}
}
