package tape

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestWriteReadRoundTrip(t *testing.T) {
	d := NewDrive(nil, "t0", DefaultParams())
	d.AddCartridges(NewCartridge("c1"))
	if err := d.Load(nil); err != nil {
		t.Fatal(err)
	}
	recs := [][]byte{[]byte("hello"), []byte("tape"), bytes.Repeat([]byte{7}, 10240)}
	for _, r := range recs {
		if err := d.WriteRecord(nil, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.WriteFileMark(nil); err != nil {
		t.Fatal(err)
	}
	d.Rewind(nil)
	for i, want := range recs {
		got, err := d.ReadRecord(nil)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if _, err := d.ReadRecord(nil); !errors.Is(err, ErrFileMark) {
		t.Fatalf("err = %v, want ErrFileMark", err)
	}
	if _, err := d.ReadRecord(nil); !errors.Is(err, ErrEndOfTape) {
		t.Fatalf("err = %v, want ErrEndOfTape", err)
	}
}

func TestNoCartridge(t *testing.T) {
	d := NewDrive(nil, "t0", DefaultParams())
	if err := d.WriteRecord(nil, []byte("x")); !errors.Is(err, ErrNoCartridge) {
		t.Fatalf("write err = %v, want ErrNoCartridge", err)
	}
	if _, err := d.ReadRecord(nil); !errors.Is(err, ErrNoCartridge) {
		t.Fatalf("read err = %v, want ErrNoCartridge", err)
	}
	if err := d.Load(nil); !errors.Is(err, ErrNoCartridge) {
		t.Fatalf("load with empty stacker err = %v, want ErrNoCartridge", err)
	}
}

func TestEndOfMediaAndSpanning(t *testing.T) {
	p := DefaultParams()
	p.Capacity = 1000
	d := NewDrive(nil, "t0", p)
	d.AddCartridges(NewCartridge("c1"), NewCartridge("c2"))
	if err := d.Load(nil); err != nil {
		t.Fatal(err)
	}
	rec := bytes.Repeat([]byte{1}, 400)
	if err := d.WriteRecord(nil, rec); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteRecord(nil, rec); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteRecord(nil, rec); !errors.Is(err, ErrEndOfMedia) {
		t.Fatalf("third write err = %v, want ErrEndOfMedia", err)
	}
	// Change cartridges and continue.
	if err := d.Load(nil); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteRecord(nil, rec); err != nil {
		t.Fatalf("write after change: %v", err)
	}
	if d.Loaded().Label != "c2" {
		t.Fatalf("loaded %q, want c2", d.Loaded().Label)
	}
	_, _, changes := d.Stats()
	if changes != 2 {
		t.Fatalf("changes = %d, want 2", changes)
	}
}

func TestLoadCyclesThroughStacker(t *testing.T) {
	d := NewDrive(nil, "t0", DefaultParams())
	d.AddCartridges(NewCartridge("a"), NewCartridge("b"))
	d.Load(nil)
	if d.Loaded().Label != "a" {
		t.Fatalf("loaded %q, want a", d.Loaded().Label)
	}
	d.Load(nil)
	if d.Loaded().Label != "b" {
		t.Fatalf("loaded %q, want b", d.Loaded().Label)
	}
	d.Load(nil) // "a" went to the back, comes around again
	if d.Loaded().Label != "a" {
		t.Fatalf("loaded %q, want a (cycled)", d.Loaded().Label)
	}
}

func TestStreamingRate(t *testing.T) {
	// Writing 85 MB at 8.5 MB/s must take ~10 s of virtual time.
	env := sim.NewEnv()
	d := NewDrive(env, "t0", DefaultParams())
	d.AddCartridges(NewCartridge("c"))
	env.Spawn("w", func(pr *sim.Proc) {
		if err := d.Load(pr); err != nil {
			t.Error(err)
			return
		}
		rec := make([]byte, 10240)
		for i := 0; i < 8704; i++ { // 85 MB in 10 KB records
			if err := d.WriteRecord(pr, rec); err != nil {
				t.Error(err)
				return
			}
		}
		d.Flush(pr)
	})
	env.Run()
	elapsed := env.Now() - DefaultParams().ChangeTime // discount the load
	if elapsed < 9*time.Second || elapsed > 13*time.Second {
		t.Fatalf("85 MB took %v, want ~10-12s", elapsed)
	}
}

func TestCartridgeChangeLatency(t *testing.T) {
	env := sim.NewEnv()
	d := NewDrive(env, "t0", DefaultParams())
	d.AddCartridges(NewCartridge("a"), NewCartridge("b"))
	env.Spawn("w", func(pr *sim.Proc) {
		d.Load(pr)
		d.Load(pr)
	})
	env.Run()
	if want := 2 * DefaultParams().ChangeTime; env.Now() != want {
		t.Fatalf("two loads took %v, want %v", env.Now(), want)
	}
}

func TestSpaceRecordsFasterThanReading(t *testing.T) {
	measure := func(skip bool) sim.Time {
		env := sim.NewEnv()
		p := DefaultParams()
		p.ChangeTime = 0
		d := NewDrive(env, "t0", p)
		d.AddCartridges(NewCartridge("c"))
		env.Spawn("rw", func(pr *sim.Proc) {
			d.Load(pr)
			rec := make([]byte, 10240)
			for i := 0; i < 100; i++ {
				d.WriteRecord(pr, rec)
			}
			d.Flush(pr)
			d.Rewind(pr)
			if skip {
				d.SpaceRecords(pr, 100)
			} else {
				for i := 0; i < 100; i++ {
					d.ReadRecord(pr)
				}
				// Reads stream asynchronously; wait for the transport
				// so the comparison covers the full media time.
				d.Flush(pr)
			}
		})
		env.Run()
		return env.Now()
	}
	tRead, tSkip := measure(false), measure(true)
	if tSkip >= tRead {
		t.Fatalf("spacing (%v) not faster than reading (%v)", tSkip, tRead)
	}
}

func TestCorruptRecord(t *testing.T) {
	d := NewDrive(nil, "t0", DefaultParams())
	d.AddCartridges(NewCartridge("c"))
	d.Load(nil)
	d.WriteRecord(nil, []byte{1, 2, 3})
	d.WriteFileMark(nil)
	d.WriteRecord(nil, []byte{4, 5, 6})
	if !d.Loaded().CorruptRecord(1) {
		t.Fatal("CorruptRecord(1) found nothing")
	}
	d.Rewind(nil)
	r0, err := d.ReadRecord(nil)
	if err != nil || !bytes.Equal(r0, []byte{1, 2, 3}) {
		t.Fatalf("record 0 = %v, %v", r0, err)
	}
	if _, err := d.ReadRecord(nil); !errors.Is(err, ErrFileMark) {
		t.Fatal("expected file mark")
	}
	r1, _ := d.ReadRecord(nil)
	if bytes.Equal(r1, []byte{4, 5, 6}) {
		t.Fatal("record 1 not corrupted")
	}
	if !d.Loaded().CorruptRecord(5) == false && d.Loaded().CorruptRecord(5) {
		t.Fatal("corrupting nonexistent record reported success")
	}
}

func TestRecordIsolation(t *testing.T) {
	// The drive must copy data on write and read: mutating the
	// caller's buffer afterwards must not affect the tape.
	d := NewDrive(nil, "t0", DefaultParams())
	d.AddCartridges(NewCartridge("c"))
	d.Load(nil)
	buf := []byte{9, 9, 9}
	d.WriteRecord(nil, buf)
	buf[0] = 0
	d.Rewind(nil)
	got, _ := d.ReadRecord(nil)
	if got[0] != 9 {
		t.Fatal("tape aliased writer buffer")
	}
	got[1] = 0
	d.Rewind(nil)
	again, _ := d.ReadRecord(nil)
	if again[1] != 9 {
		t.Fatal("tape aliased reader buffer")
	}
}

func TestCartridgeAccounting(t *testing.T) {
	c := NewCartridge("c")
	d := NewDrive(nil, "t0", DefaultParams())
	d.AddCartridges(c)
	d.Load(nil)
	d.WriteRecord(nil, make([]byte, 100))
	d.WriteRecord(nil, make([]byte, 200))
	d.WriteFileMark(nil)
	if c.Bytes() != 300 {
		t.Fatalf("Bytes = %d, want 300", c.Bytes())
	}
	if c.Records() != 2 {
		t.Fatalf("Records = %d, want 2", c.Records())
	}
}

func TestSeekFile(t *testing.T) {
	d := NewDrive(nil, "t0", DefaultParams())
	d.AddCartridges(NewCartridge("c"))
	d.Load(nil)
	// Three tape files: [A1 A2] mark [B1] mark [C1 C2 C3]
	d.WriteRecord(nil, []byte("A1"))
	d.WriteRecord(nil, []byte("A2"))
	d.WriteFileMark(nil)
	d.WriteRecord(nil, []byte("B1"))
	d.WriteFileMark(nil)
	d.WriteRecord(nil, []byte("C1"))

	if err := d.SeekFile(nil, 1); err != nil {
		t.Fatal(err)
	}
	r, err := d.ReadRecord(nil)
	if err != nil || string(r) != "B1" {
		t.Fatalf("after SeekFile(1): %q, %v", r, err)
	}
	if err := d.SeekFile(nil, 2); err != nil {
		t.Fatal(err)
	}
	r, _ = d.ReadRecord(nil)
	if string(r) != "C1" {
		t.Fatalf("after SeekFile(2): %q", r)
	}
	if err := d.SeekFile(nil, 0); err != nil {
		t.Fatal(err)
	}
	r, _ = d.ReadRecord(nil)
	if string(r) != "A1" {
		t.Fatalf("after SeekFile(0): %q", r)
	}
	if err := d.SeekFile(nil, 9); err == nil {
		t.Fatal("seek past last mark succeeded")
	}
	if err := NewDrive(nil, "x", DefaultParams()).SeekFile(nil, 1); err == nil {
		t.Fatal("seek with no cartridge succeeded")
	}
}
