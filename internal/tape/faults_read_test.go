package tape

import (
	"bytes"
	"errors"
	"testing"
)

func readyDrive(t *testing.T, records int) *Drive {
	t.Helper()
	d := NewDrive(nil, "t0", DefaultParams())
	d.AddCartridges(NewCartridge("a"))
	if err := d.Load(nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < records; i++ {
		if err := d.WriteRecord(nil, []byte{byte('r'), byte('0' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	d.Rewind(nil)
	return d
}

// TestReadFaultTransientDoesNotAdvance: a transient read error leaves
// the head parked, so the retry returns the very record that faulted.
func TestReadFaultTransientDoesNotAdvance(t *testing.T) {
	d := readyDrive(t, 3)
	d.FailNextRead(true)
	_, err := d.ReadRecord(nil)
	if !errors.Is(err, ErrMediaRead) || !IsTransientMedia(err) {
		t.Fatalf("want transient media read error, got %v", err)
	}
	if errors.Is(err, ErrMediaWrite) {
		t.Fatal("read error must not classify as a write error")
	}
	rec, err := d.ReadRecord(nil)
	if err != nil || !bytes.Equal(rec, []byte("r0")) {
		t.Fatalf("retry got %q / %v, want the faulted record", rec, err)
	}
	if d.MediaErrors() != 1 || d.Loaded().BadRecords() != 0 {
		t.Fatalf("errors=%d bad=%d, want 1 transient, nothing latched",
			d.MediaErrors(), d.Loaded().BadRecords())
	}
}

// TestReadFaultPersistentLatches: a persistent read error damages the
// spot of tape — every re-read fails, even after a rewind — but
// spacing past it reaches the intact neighbours.
func TestReadFaultPersistentLatches(t *testing.T) {
	d := readyDrive(t, 3)
	d.FailNextRead(false)
	for attempt := 0; attempt < 3; attempt++ {
		_, err := d.ReadRecord(nil)
		if !errors.Is(err, ErrMediaRead) || IsTransientMedia(err) {
			t.Fatalf("attempt %d: want persistent read error, got %v", attempt, err)
		}
	}
	if err := d.SpaceRecords(nil, 1); err != nil {
		t.Fatal(err)
	}
	rec, err := d.ReadRecord(nil)
	if err != nil || !bytes.Equal(rec, []byte("r1")) {
		t.Fatalf("after spacing past the bad spot got %q / %v", rec, err)
	}
	d.Rewind(nil)
	if _, err := d.ReadRecord(nil); !errors.Is(err, ErrMediaRead) {
		t.Fatalf("bad spot healed across rewind: %v", err)
	}
	if d.Loaded().BadRecords() != 1 {
		t.Fatalf("bad records = %d, want 1", d.Loaded().BadRecords())
	}
}

// TestReadFaultSeededReproduces: the probabilistic read-fault stream
// is a pure function of the seed and operation sequence.
func TestReadFaultSeededReproduces(t *testing.T) {
	run := func() (faults int, got int) {
		d := readyDrive(t, 40)
		d.InjectFaults(FaultConfig{Seed: 77, ReadFault: 0.3, ReadTransient: 0.5})
		for {
			_, err := d.ReadRecord(nil)
			switch {
			case err == nil:
				got++
			case IsTransientMedia(err):
				// bounded retry: the post-fault draw is suppressed
			case errors.Is(err, ErrMediaRead):
				if serr := d.SpaceRecords(nil, 1); serr != nil {
					t.Fatal(serr)
				}
			case errors.Is(err, ErrEndOfTape):
				return d.MediaErrors(), got
			default:
				t.Fatal(err)
			}
		}
	}
	f1, g1 := run()
	f2, g2 := run()
	if f1 != f2 || g1 != g2 {
		t.Fatalf("same seed diverged: %d/%d vs %d/%d", f1, g1, f2, g2)
	}
	if f1 == 0 {
		t.Fatal("read faults never fired")
	}
	if g1 == 40 {
		t.Fatal("expected at least one latched record to be lost")
	}
}
