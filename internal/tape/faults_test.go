package tape

import (
	"errors"
	"testing"
)

func TestFailNextWriteTransient(t *testing.T) {
	d := NewDrive(nil, "t0", DefaultParams())
	d.AddCartridges(NewCartridge("A"))
	if err := d.Load(nil); err != nil {
		t.Fatal(err)
	}
	d.FailNextWrite(true)
	err := d.WriteRecord(nil, []byte("rec"))
	if !errors.Is(err, ErrMediaWrite) || !IsTransientMedia(err) {
		t.Fatalf("want transient media error, got %v", err)
	}
	// Transient: the retry of the same record succeeds and the
	// cartridge is undamaged.
	if err := d.WriteRecord(nil, []byte("rec")); err != nil {
		t.Fatalf("retry after transient: %v", err)
	}
	if d.Loaded().Damaged() {
		t.Fatal("transient error damaged the cartridge")
	}
}

func TestPersistentMediaErrorDamagesCartridge(t *testing.T) {
	d := NewDrive(nil, "t0", DefaultParams())
	d.AddCartridges(NewCartridge("A"), NewCartridge("B"))
	if err := d.Load(nil); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteRecord(nil, []byte("first")); err != nil {
		t.Fatal(err)
	}
	d.FailNextWrite(false)
	err := d.WriteRecord(nil, []byte("second"))
	if !errors.Is(err, ErrMediaWrite) || IsTransientMedia(err) {
		t.Fatalf("want persistent media error, got %v", err)
	}
	// Every further write to the damaged cartridge fails...
	if err := d.WriteRecord(nil, []byte("third")); !errors.Is(err, ErrMediaWrite) {
		t.Fatalf("damaged cartridge accepted a write: %v", err)
	}
	// ...but what was already on it still reads.
	d.Rewind(nil)
	rec, err := d.ReadRecord(nil)
	if err != nil || string(rec) != "first" {
		t.Fatalf("read from damaged cartridge: %q, %v", rec, err)
	}
	// Switching cartridges gets the stream going again.
	if err := d.Load(nil); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteRecord(nil, []byte("second")); err != nil {
		t.Fatalf("fresh cartridge: %v", err)
	}
}

func TestOfflineAfterRecords(t *testing.T) {
	d := NewDrive(nil, "t0", DefaultParams())
	d.AddCartridges(NewCartridge("A"))
	if err := d.Load(nil); err != nil {
		t.Fatal(err)
	}
	d.InjectFaults(FaultConfig{OfflineAfterRecords: 2})
	for i := 0; i < 2; i++ {
		if err := d.WriteRecord(nil, []byte("rec")); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if !d.Offline() {
		t.Fatal("drive not offline after configured record count")
	}
	if err := d.WriteRecord(nil, []byte("rec")); !errors.Is(err, ErrOffline) {
		t.Fatalf("offline write: %v", err)
	}
	if err := d.Load(nil); !errors.Is(err, ErrOffline) {
		t.Fatalf("offline load: %v", err)
	}
	if _, err := d.ReadRecord(nil); !errors.Is(err, ErrOffline) {
		t.Fatalf("offline read: %v", err)
	}
	// Both records written before the event survive the outage.
	d.SetOffline(false)
	d.Rewind(nil)
	for i := 0; i < 2; i++ {
		if _, err := d.ReadRecord(nil); err != nil {
			t.Fatalf("read %d after recovery: %v", i, err)
		}
	}
}

func TestProbabilisticMediaErrorsDeterministic(t *testing.T) {
	run := func() (errs int, transients int) {
		d := NewDrive(nil, "t0", DefaultParams())
		d.AddCartridges(NewCartridge("A"), NewCartridge("B"), NewCartridge("C"))
		if err := d.Load(nil); err != nil {
			t.Fatal(err)
		}
		d.InjectFaults(FaultConfig{Seed: 11, WriteFault: 0.05, Transient: 0.5})
		for i := 0; i < 400; i++ {
			err := d.WriteRecord(nil, []byte("record payload"))
			switch {
			case err == nil:
			case IsTransientMedia(err):
				transients++
			case errors.Is(err, ErrMediaWrite):
				errs++
				if lerr := d.Load(nil); lerr != nil {
					t.Fatal(lerr)
				}
			default:
				t.Fatalf("write %d: %v", i, err)
			}
		}
		return errs, transients
	}
	e1, t1 := run()
	e2, t2 := run()
	if e1 != e2 || t1 != t2 {
		t.Fatalf("same seed diverged: (%d,%d) vs (%d,%d)", e1, t1, e2, t2)
	}
	if e1+t1 == 0 {
		t.Fatal("no media errors injected in 400 writes at p=0.05")
	}
}
