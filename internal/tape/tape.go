// Package tape simulates the backup media of the paper: DLT-7000 tape
// drives fed by Breece-Hill stackers. A Drive streams variable-length
// records onto a Cartridge at a fixed transport rate, retains the real
// bytes for later reads, enforces cartridge capacity (so dumps span
// volumes, exercising the multi-volume paths of both dump formats) and
// charges cartridge-change latency when the stacker swaps media.
package tape

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Errors returned by drives.
var (
	// ErrEndOfMedia is returned by WriteRecord when the current
	// cartridge is full; the caller changes cartridges and retries.
	ErrEndOfMedia = errors.New("tape: end of media")
	// ErrEndOfTape is returned by ReadRecord at the end of recorded data.
	ErrEndOfTape = errors.New("tape: end of recorded data")
	// ErrFileMark is returned by ReadRecord when positioned at a file mark.
	ErrFileMark = errors.New("tape: file mark")
	// ErrNoCartridge is returned when no cartridge is loaded.
	ErrNoCartridge = errors.New("tape: no cartridge loaded")
)

// Params describes a drive's performance. Defaults model a DLT-7000:
// 5 MB/s native, ~8.5 MB/s with compression engaged (the effective
// rate the paper's numbers imply), 90 s cartridge change.
type Params struct {
	// Rate is the streaming transfer rate in bytes/second.
	Rate float64
	// PerRecord is fixed per-record command overhead.
	PerRecord time.Duration
	// ChangeTime is the stacker's cartridge-change latency.
	ChangeTime time.Duration
	// WriteBehind is the drive buffer depth, as owed service time.
	WriteBehind time.Duration
	// Capacity is the cartridge capacity in bytes (0 = unlimited).
	Capacity int64
}

// DefaultParams returns the DLT-7000 model used by the benchmarks.
func DefaultParams() Params {
	return Params{
		Rate:        8.5 * (1 << 20),
		PerRecord:   200 * time.Microsecond,
		ChangeTime:  90 * time.Second,
		WriteBehind: 100 * time.Millisecond, // ~0.85 MB drive buffer
	}
}

// A Cartridge holds recorded data: a sequence of records and file
// marks. Cartridges survive being unloaded, so a restore can reload
// what a backup wrote — or a different filer can (cross-restore).
type Cartridge struct {
	Label    string
	records  []record
	used     int64
	damaged  bool         // latched by a persistent media write error
	badReads map[int]bool // record indexes latched unreadable
}

// record is one tape record or a file mark.
type record struct {
	data []byte // nil means file mark
	mark bool
}

// NewCartridge creates an empty labelled cartridge.
func NewCartridge(label string) *Cartridge { return &Cartridge{Label: label} }

// Bytes returns the number of data bytes recorded.
func (c *Cartridge) Bytes() int64 { return c.used }

// Records returns the number of records (excluding file marks).
func (c *Cartridge) Records() int {
	n := 0
	for _, r := range c.records {
		if !r.mark {
			n++
		}
	}
	return n
}

// Index returns the raw write-head position: the count of records and
// file marks on the cartridge. The backup catalog records it before a
// dump starts so a restore can position to the dump's first record
// with Rewind + SpaceRecords(index), even on a cartridge shared by
// several dump sets.
func (c *Cartridge) Index() int { return len(c.records) }

// Erase wipes the cartridge back to scratch: all records, file marks
// and latched damage are gone. Only the media pool calls this, and
// only after every dump set on the cartridge has expired — the
// overwrite protection a tape library's scratch rotation relies on.
func (c *Cartridge) Erase() {
	c.records = nil
	c.used = 0
	c.damaged = false
	c.badReads = nil
}

// CorruptRecord flips bits in recorded record index i (counting data
// records only), for restore-resilience tests. It reports whether a
// record was corrupted.
func (c *Cartridge) CorruptRecord(i int) bool {
	n := 0
	for j := range c.records {
		if c.records[j].mark {
			continue
		}
		if n == i {
			for k := range c.records[j].data {
				c.records[j].data[k] ^= 0xFF
			}
			return true
		}
		n++
	}
	return false
}

// CorruptRecordAt silently flips bits in the record at raw index i
// (the Index() coordinate, counting file marks). Unlike InjectLatentFault
// the record stays readable — detection is up to stream checksums,
// modelling rot the drive's ECC misses. It reports whether a data
// record was corrupted.
func (c *Cartridge) CorruptRecordAt(i int) bool {
	if i < 0 || i >= len(c.records) || c.records[i].mark {
		return false
	}
	for k := range c.records[i].data {
		c.records[i].data[k] ^= 0xFF
	}
	return true
}

// InjectLatentFault latches the record at raw index i unreadable — the
// latent-sector rot a drive's ECC does catch, surfacing as a persistent
// MediaError on read. It reports whether a data record was latched.
func (c *Cartridge) InjectLatentFault(i int) bool {
	if i < 0 || i >= len(c.records) || c.records[i].mark {
		return false
	}
	if c.badReads == nil {
		c.badReads = make(map[int]bool)
	}
	c.badReads[i] = true
	return true
}

// RecordAt is the scrubber's maintenance read: it returns a copy of the
// record at raw index i without the drive fault model or time charges.
// unreadable reports a latched read fault (data is nil then); mark
// reports a file mark; ok is false past the recorded extent.
func (c *Cartridge) RecordAt(i int) (data []byte, mark, unreadable, ok bool) {
	if i < 0 || i >= len(c.records) {
		return nil, false, false, false
	}
	r := c.records[i]
	if r.mark {
		return nil, true, false, true
	}
	if c.badReads[i] {
		return nil, false, true, true
	}
	cp := make([]byte, len(r.data))
	copy(cp, r.data)
	return cp, false, false, true
}

// RepairRecordAt rewrites the record at raw index i with known-good
// bytes (from a replica or RAID reconstruction), clearing any latched
// read fault — the in-place repair of the scrub subsystem. It refuses
// file marks and out-of-range indexes.
func (c *Cartridge) RepairRecordAt(i int, data []byte) bool {
	if i < 0 || i >= len(c.records) || c.records[i].mark || len(data) == 0 {
		return false
	}
	c.used += int64(len(data)) - int64(len(c.records[i].data))
	cp := make([]byte, len(data))
	copy(cp, data)
	c.records[i].data = cp
	delete(c.badReads, i)
	return true
}

// Drive is a simulated tape drive with an attached stacker (a queue of
// cartridges). Loading, reading, writing and changing cartridges all
// charge virtual time when a sim process is attached via the methods'
// Proc arguments (passed as *sim.Proc rather than ctx because tape use
// is always explicit in the dump engines).
type Drive struct {
	name    string
	params  Params
	station *sim.Station

	cart    *Cartridge
	pos     int // read position in cart.records
	stacker []*Cartridge

	bytesWritten int64
	bytesRead    int64
	changes      int

	// Fault-injection state (see faults.go).
	faults          *FaultConfig
	rng             *rand.Rand
	pendingFail     []bool // queued deterministic media write errors (transient?)
	pendingReadFail []bool // queued deterministic media read errors (transient?)
	skipDraw        bool   // next probabilistic write draw suppressed (retry of a transient)
	skipReadDraw    bool   // next probabilistic read draw suppressed (retry of a transient)
	offline         bool
	mediaErrors     int
	recordsWritten  int // successful data-record writes, for OfflineAfterRecords
}

// NewDrive creates a drive named name. env may be nil for untimed use.
func NewDrive(env *sim.Env, name string, p Params) *Drive {
	d := &Drive{name: name, params: p}
	if env != nil {
		d.station = sim.NewStation(env, name, p.WriteBehind)
	}
	return d
}

// Name returns the drive name.
func (d *Drive) Name() string { return d.name }

// Station returns the drive's sim station for utilization accounting
// (nil when untimed).
func (d *Drive) Station() *sim.Station { return d.station }

// RegisterMetrics installs pull collectors for the drive's traffic,
// record, volume-switch and media-error counters. Idempotent per
// (registry, drive).
func (d *Drive) RegisterMetrics(r *obs.Registry) {
	l := obs.Labels{"drive": d.name}
	r.RegisterFunc("tape_written_bytes_total", obs.KindCounter, l, func() float64 {
		return float64(d.bytesWritten)
	})
	r.RegisterFunc("tape_read_bytes_total", obs.KindCounter, l, func() float64 {
		return float64(d.bytesRead)
	})
	r.RegisterFunc("tape_records_total", obs.KindCounter, l, func() float64 {
		return float64(d.recordsWritten)
	})
	r.RegisterFunc("tape_volume_switches_total", obs.KindCounter, l, func() float64 {
		return float64(d.changes)
	})
	r.RegisterFunc("tape_media_errors_total", obs.KindCounter, l, func() float64 {
		return float64(d.mediaErrors)
	})
	r.RegisterFunc("tape_busy_seconds", obs.KindGauge, l, func() float64 {
		if d.station == nil {
			return 0
		}
		return d.station.Busy().Seconds()
	})
}

// Stats returns bytes written, bytes read and cartridge changes.
func (d *Drive) Stats() (written, read int64, changes int) {
	return d.bytesWritten, d.bytesRead, d.changes
}

// AddCartridges loads the stacker with cartridges, in order.
func (d *Drive) AddCartridges(carts ...*Cartridge) {
	d.stacker = append(d.stacker, carts...)
}

// Load mounts the next stacker cartridge, unloading any current one
// back to the rear of the stacker. It charges the change latency.
func (d *Drive) Load(p *sim.Proc) error {
	if d.offline {
		return ErrOffline
	}
	if len(d.stacker) == 0 {
		return ErrNoCartridge
	}
	if d.cart != nil {
		d.stacker = append(d.stacker, d.cart)
	}
	d.cart = d.stacker[0]
	d.stacker = d.stacker[1:]
	d.pos = 0
	d.changes++
	if d.station != nil {
		d.station.Sync(p, d.params.ChangeTime)
	}
	return nil
}

// Loaded returns the mounted cartridge, or nil.
func (d *Drive) Loaded() *Cartridge { return d.cart }

// Stacker returns the queued cartridges, front (next to load) first.
// The media pool uses it to adopt a filer's preloaded tape bank.
func (d *Drive) Stacker() []*Cartridge {
	out := make([]*Cartridge, len(d.stacker))
	copy(out, d.stacker)
	return out
}

// Rewind positions the read head at the beginning of the cartridge,
// charging time proportional to the tape to be rewound (at roughly 8x
// the streaming rate, like a DLT repositioning pass).
func (d *Drive) Rewind(p *sim.Proc) {
	if d.cart == nil {
		return
	}
	var passed int64
	for i := 0; i < d.pos && i < len(d.cart.records); i++ {
		passed += int64(len(d.cart.records[i].data))
	}
	if d.pos >= len(d.cart.records) {
		passed = d.cart.used
	}
	d.pos = 0
	if d.station != nil && passed > 0 {
		d.station.Sync(p, sim.TimeFor(int(passed), d.params.Rate*8))
	}
}

// WriteRecord appends a record to the mounted cartridge. It returns
// ErrEndOfMedia when the cartridge is at capacity; the caller should
// Load the next cartridge and retry. Writes are buffered: the caller
// blocks only when the drive buffer is full.
func (d *Drive) WriteRecord(p *sim.Proc, data []byte) error {
	if d.offline {
		return ErrOffline
	}
	if d.cart == nil {
		return ErrNoCartridge
	}
	if len(data) == 0 {
		return errors.New("tape: empty record")
	}
	if d.cart.damaged {
		return &MediaError{Record: len(d.cart.records)}
	}
	if d.params.Capacity > 0 && d.cart.used+int64(len(data)) > d.params.Capacity {
		return ErrEndOfMedia
	}
	if err := d.writeFault(); err != nil {
		return err
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	d.cart.records = append(d.cart.records, record{data: cp})
	d.cart.used += int64(len(data))
	d.bytesWritten += int64(len(data))
	d.recordsWritten++
	if d.station != nil {
		d.station.Async(p, d.params.PerRecord+sim.TimeFor(len(data), d.params.Rate))
	}
	if d.faults != nil && d.faults.OfflineAfterRecords > 0 && d.recordsWritten >= d.faults.OfflineAfterRecords {
		// The record made it to tape; the drive drops dead after it.
		d.offline = true
	}
	return nil
}

// WriteFileMark writes a file mark separating tape files.
func (d *Drive) WriteFileMark(p *sim.Proc) error {
	if d.cart == nil {
		return ErrNoCartridge
	}
	d.cart.records = append(d.cart.records, record{mark: true})
	if d.station != nil {
		d.station.Async(p, d.params.PerRecord)
	}
	return nil
}

// Flush blocks until the drive buffer has drained to media.
func (d *Drive) Flush(p *sim.Proc) {
	if d.station != nil {
		d.station.Drain(p)
	}
}

// ReadRecord returns the next record. At a file mark it returns
// (nil, ErrFileMark) and advances past the mark; at the end of data it
// returns (nil, ErrEndOfTape).
//
// Reads are charged asynchronously against the transport, modelling
// the drive's read-ahead buffer (depth WriteBehind): the drive streams
// ahead of the consumer, so a consumer slower than the tape never
// stalls it, and a faster one is throttled to the streaming rate —
// which is why the paper's logical restore shows tape utilization
// under 100% while the filesystem path is the bottleneck.
func (d *Drive) ReadRecord(p *sim.Proc) ([]byte, error) {
	if d.offline {
		return nil, ErrOffline
	}
	if d.cart == nil {
		return nil, ErrNoCartridge
	}
	if d.pos >= len(d.cart.records) {
		return nil, ErrEndOfTape
	}
	r := d.cart.records[d.pos]
	if r.mark {
		d.pos++
		return nil, ErrFileMark
	}
	// Media read faults surface before the head advances: a transient
	// retry re-reads this record, a persistent fault parks the head
	// before the bad spot (SpaceRecords skips past it).
	if err := d.readFault(); err != nil {
		return nil, err
	}
	d.pos++
	d.bytesRead += int64(len(r.data))
	if d.station != nil {
		d.station.Async(p, d.params.PerRecord+sim.TimeFor(len(r.data), d.params.Rate))
	}
	cp := make([]byte, len(r.data))
	copy(cp, r.data)
	return cp, nil
}

// SeekFile positions the head immediately after the nth file mark
// (n = 0 rewinds to the start), spacing at search speed — how a
// stacker-less operator reaches the second dump on a multi-dump
// cartridge.
func (d *Drive) SeekFile(p *sim.Proc, n int) error {
	if d.cart == nil {
		return ErrNoCartridge
	}
	d.pos = 0
	if n == 0 {
		return nil
	}
	var passed int64
	marks := 0
	for d.pos < len(d.cart.records) {
		r := d.cart.records[d.pos]
		d.pos++
		passed += int64(len(r.data))
		if r.mark {
			marks++
			if marks == n {
				if d.station != nil {
					d.station.Sync(p, sim.TimeFor(int(passed), d.params.Rate*8))
				}
				return nil
			}
		}
	}
	return ErrEndOfTape
}

// SpaceRecords skips n records forward at search speed (much faster
// than reading), the way restore skips files it does not need.
func (d *Drive) SpaceRecords(p *sim.Proc, n int) error {
	if d.cart == nil {
		return ErrNoCartridge
	}
	var skipped int64
	for i := 0; i < n && d.pos < len(d.cart.records); i++ {
		skipped += int64(len(d.cart.records[d.pos].data))
		d.pos++
	}
	if d.station != nil {
		// Spacing runs at roughly 8x streaming speed on a DLT.
		d.station.Sync(p, sim.TimeFor(int(skipped), d.params.Rate*8))
	}
	return nil
}

// String implements fmt.Stringer.
func (d *Drive) String() string {
	label := "<none>"
	if d.cart != nil {
		label = d.cart.Label
	}
	return fmt.Sprintf("drive %s (cart %s, %d queued)", d.name, label, len(d.stacker))
}
