package tape

import (
	"errors"
	"fmt"
	"math/rand"
)

// Fault errors for the media model.
var (
	// ErrMediaWrite classifies media write errors; match with
	// errors.Is. The concrete error is a *MediaError.
	ErrMediaWrite = errors.New("tape: media write error")
	// ErrOffline is returned once a drive has dropped offline (power,
	// SCSI bus, robot arm); it stays down until SetOffline(false).
	ErrOffline = errors.New("tape: drive offline")
)

// MediaError is an injected media write fault. A transient error
// clears on retry (a soft write error the drive recovers by
// rewriting); a persistent one marks the cartridge bad — every later
// write to it fails, though records already on it remain readable.
type MediaError struct {
	Transient bool
	Record    int // record index at which the fault hit
}

func (e *MediaError) Error() string {
	kind := "persistent"
	if e.Transient {
		kind = "transient"
	}
	return fmt.Sprintf("tape: %s media write error at record %d", kind, e.Record)
}

// Is lets errors.Is(err, ErrMediaWrite) match.
func (e *MediaError) Is(target error) bool { return target == ErrMediaWrite }

// IsTransientMedia reports whether err is a transient media write
// error worth retrying on the same cartridge.
func IsTransientMedia(err error) bool {
	var me *MediaError
	return errors.As(err, &me) && me.Transient
}

// FaultConfig arms seeded probabilistic faults on a drive.
type FaultConfig struct {
	// Seed initialises the drive's private rand.Rand.
	Seed int64
	// WriteFault is the per-record probability of a media write error.
	WriteFault float64
	// Transient is the fraction of media write errors that are
	// transient; the rest damage the cartridge.
	Transient float64
	// OfflineAfterRecords drops the drive offline right after this
	// many successful record writes (0 = never) — the mid-dump
	// power/robot failure that forces a checkpoint restart.
	OfflineAfterRecords int
}

// InjectFaults arms cfg on the drive. Deterministic injections via
// FailNextWrite and SetOffline work whether or not a config is armed.
func (d *Drive) InjectFaults(cfg FaultConfig) {
	d.faults = &cfg
	d.rng = rand.New(rand.NewSource(cfg.Seed))
}

// FailNextWrite queues a deterministic media error for the next
// WriteRecord. Multiple calls queue multiple errors, so a test can
// fail the first write on a fresh cartridge too.
func (d *Drive) FailNextWrite(transient bool) {
	d.pendingFail = append(d.pendingFail, transient)
}

// SetOffline forces the drive offline (true) or returns it to service
// (false) — the operator power-cycling the library.
func (d *Drive) SetOffline(off bool) { d.offline = off }

// Offline reports whether the drive is offline.
func (d *Drive) Offline() bool { return d.offline }

// MediaErrors returns how many media write errors the drive has
// surfaced (injected deterministically or probabilistically).
func (d *Drive) MediaErrors() int { return d.mediaErrors }

// Damaged reports whether the cartridge has a latched write fault.
func (c *Cartridge) Damaged() bool { return c.damaged }

// writeFault decides whether this WriteRecord faults, consuming any
// queued deterministic failure first.
func (d *Drive) writeFault() error {
	if len(d.pendingFail) > 0 {
		tr := d.pendingFail[0]
		d.pendingFail = d.pendingFail[1:]
		if !tr {
			d.cart.damaged = true
		}
		d.mediaErrors++
		return &MediaError{Transient: tr, Record: len(d.cart.records)}
	}
	if d.faults == nil || d.faults.WriteFault <= 0 {
		return nil
	}
	if d.skipDraw {
		// The previous draw produced a transient error; let the retry
		// of the same record through instead of re-rolling the dice,
		// so "transient" keeps its meaning under any WriteFault rate.
		d.skipDraw = false
		return nil
	}
	if d.rng.Float64() >= d.faults.WriteFault {
		return nil
	}
	d.mediaErrors++
	if d.rng.Float64() < d.faults.Transient {
		d.skipDraw = true
		return &MediaError{Transient: true, Record: len(d.cart.records)}
	}
	d.cart.damaged = true
	return &MediaError{Record: len(d.cart.records)}
}
