package tape

import (
	"errors"
	"fmt"
	"math/rand"
)

// Fault errors for the media model.
var (
	// ErrMediaWrite classifies media write errors; match with
	// errors.Is. The concrete error is a *MediaError.
	ErrMediaWrite = errors.New("tape: media write error")
	// ErrMediaRead classifies media read errors; match with
	// errors.Is. The concrete error is a *MediaError with Read set.
	ErrMediaRead = errors.New("tape: media read error")
	// ErrOffline is returned once a drive has dropped offline (power,
	// SCSI bus, robot arm); it stays down until SetOffline(false).
	ErrOffline = errors.New("tape: drive offline")
)

// MediaError is an injected media fault. A transient error clears on
// retry (a soft error the drive recovers by rewriting, or re-reading
// after a repositioning pass); a persistent write error marks the
// cartridge bad — every later write to it fails, though records
// already on it remain readable; a persistent read error latches on
// the record itself (a damaged spot of tape): that record never reads
// again, but its neighbours do, which is what restore's skip-damaged
// mode exploits.
type MediaError struct {
	Transient bool
	Read      bool // read-side fault; otherwise write-side
	Record    int  // record index at which the fault hit
}

func (e *MediaError) Error() string {
	kind := "persistent"
	if e.Transient {
		kind = "transient"
	}
	op := "write"
	if e.Read {
		op = "read"
	}
	return fmt.Sprintf("tape: %s media %s error at record %d", kind, op, e.Record)
}

// Is lets errors.Is(err, ErrMediaWrite) and errors.Is(err,
// ErrMediaRead) match the right side of the head.
func (e *MediaError) Is(target error) bool {
	if e.Read {
		return target == ErrMediaRead
	}
	return target == ErrMediaWrite
}

// IsTransientMedia reports whether err is a transient media write
// error worth retrying on the same cartridge.
func IsTransientMedia(err error) bool {
	var me *MediaError
	return errors.As(err, &me) && me.Transient
}

// FaultConfig arms seeded probabilistic faults on a drive.
type FaultConfig struct {
	// Seed initialises the drive's private rand.Rand.
	Seed int64
	// WriteFault is the per-record probability of a media write error.
	WriteFault float64
	// Transient is the fraction of media write errors that are
	// transient; the rest damage the cartridge.
	Transient float64
	// ReadFault is the per-record probability of a media read error,
	// injected on the restore/verify path.
	ReadFault float64
	// ReadTransient is the fraction of read errors that are
	// transient; the rest latch the record unreadable forever.
	ReadTransient float64
	// OfflineAfterRecords drops the drive offline right after this
	// many successful record writes (0 = never) — the mid-dump
	// power/robot failure that forces a checkpoint restart.
	OfflineAfterRecords int
}

// InjectFaults arms cfg on the drive. Deterministic injections via
// FailNextWrite and SetOffline work whether or not a config is armed.
func (d *Drive) InjectFaults(cfg FaultConfig) {
	d.faults = &cfg
	d.rng = rand.New(rand.NewSource(cfg.Seed))
}

// FailNextWrite queues a deterministic media error for the next
// WriteRecord. Multiple calls queue multiple errors, so a test can
// fail the first write on a fresh cartridge too.
func (d *Drive) FailNextWrite(transient bool) {
	d.pendingFail = append(d.pendingFail, transient)
}

// FailNextRead queues a deterministic media error for the next
// ReadRecord. A persistent one latches the record unreadable.
func (d *Drive) FailNextRead(transient bool) {
	d.pendingReadFail = append(d.pendingReadFail, transient)
}

// SetOffline forces the drive offline (true) or returns it to service
// (false) — the operator power-cycling the library.
func (d *Drive) SetOffline(off bool) { d.offline = off }

// Offline reports whether the drive is offline.
func (d *Drive) Offline() bool { return d.offline }

// MediaErrors returns how many media write errors the drive has
// surfaced (injected deterministically or probabilistically).
func (d *Drive) MediaErrors() int { return d.mediaErrors }

// Damaged reports whether the cartridge has a latched write fault.
func (c *Cartridge) Damaged() bool { return c.damaged }

// BadRecords returns how many records on the cartridge are latched
// unreadable by persistent read faults.
func (c *Cartridge) BadRecords() int { return len(c.badReads) }

// writeFault decides whether this WriteRecord faults, consuming any
// queued deterministic failure first.
func (d *Drive) writeFault() error {
	if len(d.pendingFail) > 0 {
		tr := d.pendingFail[0]
		d.pendingFail = d.pendingFail[1:]
		if !tr {
			d.cart.damaged = true
		}
		d.mediaErrors++
		return &MediaError{Transient: tr, Record: len(d.cart.records)}
	}
	if d.faults == nil || d.faults.WriteFault <= 0 {
		return nil
	}
	if d.skipDraw {
		// The previous draw produced a transient error; let the retry
		// of the same record through instead of re-rolling the dice,
		// so "transient" keeps its meaning under any WriteFault rate.
		d.skipDraw = false
		return nil
	}
	if d.rng.Float64() >= d.faults.WriteFault {
		return nil
	}
	d.mediaErrors++
	if d.rng.Float64() < d.faults.Transient {
		d.skipDraw = true
		return &MediaError{Transient: true, Record: len(d.cart.records)}
	}
	d.cart.damaged = true
	return &MediaError{Record: len(d.cart.records)}
}

// readFault decides whether the read of the record at the head faults.
// The head does NOT advance on a fault: a transient error re-reads the
// same record on retry, and a persistent one leaves the head parked
// before the bad spot so the caller can decide to space past it.
func (d *Drive) readFault() error {
	idx := d.pos
	if d.cart.badReads[idx] {
		// A latched bad spot fails every attempt, no new draw.
		return &MediaError{Read: true, Record: idx}
	}
	if len(d.pendingReadFail) > 0 {
		tr := d.pendingReadFail[0]
		d.pendingReadFail = d.pendingReadFail[1:]
		d.mediaErrors++
		if !tr {
			d.latchBadRead(idx)
		}
		return &MediaError{Transient: tr, Read: true, Record: idx}
	}
	if d.faults == nil || d.faults.ReadFault <= 0 {
		return nil
	}
	if d.skipReadDraw {
		// The previous draw produced a transient error; let the retry
		// of the same record through instead of re-rolling the dice.
		d.skipReadDraw = false
		return nil
	}
	if d.rng.Float64() >= d.faults.ReadFault {
		return nil
	}
	d.mediaErrors++
	if d.rng.Float64() < d.faults.ReadTransient {
		d.skipReadDraw = true
		return &MediaError{Transient: true, Read: true, Record: idx}
	}
	d.latchBadRead(idx)
	return &MediaError{Read: true, Record: idx}
}

func (d *Drive) latchBadRead(idx int) {
	if d.cart.badReads == nil {
		d.cart.badReads = make(map[int]bool)
	}
	d.cart.badReads[idx] = true
}
