package scrub

import (
	"context"
	"sync"
)

// Replica is a redundancy source for repair: anything able to produce
// a dump set's byte-identical stream record list. The scheduler's
// capture mirror (Store) is one; a standby tape host or a RAID-backed
// stream rebuild slot in the same way.
type Replica interface {
	// Fetch returns the set's records in stream order, or ok=false
	// when this source has no copy.
	Fetch(ctx context.Context, setID uint64) ([][]byte, bool)
}

// Store is an in-memory stream-record mirror keyed by dump set — the
// scrub-side view of the "-standby" replication the catalog journal
// already has. The scheduler tees every dump's records into it via
// CaptureSink, giving the scrubber a known-good copy to repair from.
type Store struct {
	mu   sync.Mutex
	sets map[uint64][][]byte
}

// NewStore returns an empty mirror.
func NewStore() *Store { return &Store{sets: make(map[uint64][][]byte)} }

// Put stores a set's records (the slice is retained, not copied — the
// capture path already owns fresh copies).
func (s *Store) Put(setID uint64, recs [][]byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sets[setID] = recs
}

// Fetch implements Replica.
func (s *Store) Fetch(_ context.Context, setID uint64) ([][]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	recs, ok := s.sets[setID]
	return recs, ok
}

// Drop forgets a set (after retention expires it).
func (s *Store) Drop(setID uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.sets, setID)
}

// Len reports how many sets are mirrored.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sets)
}

// Sink is the record-sink shape both stream formats write to.
type Sink interface {
	WriteRecord(data []byte) error
	NextVolume() error
}

// CaptureSink tees every successfully written record into an in-memory
// list while forwarding to the real sink. Because the tape layer never
// lands a failed write, the captured list is byte-identical to what
// reached media — exactly what repairFrom needs.
type CaptureSink struct {
	Sink Sink
	recs [][]byte
}

// WriteRecord implements Sink, capturing on success only.
func (c *CaptureSink) WriteRecord(data []byte) error {
	if err := c.Sink.WriteRecord(data); err != nil {
		return err
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	c.recs = append(c.recs, cp)
	return nil
}

// NextVolume implements Sink.
func (c *CaptureSink) NextVolume() error { return c.Sink.NextVolume() }

// Sync forwards the checkpoint-durability contract when the wrapped
// sink has one.
func (c *CaptureSink) Sync() error {
	if s, ok := c.Sink.(interface{ Sync() error }); ok {
		return s.Sync()
	}
	return nil
}

// Records returns the captured stream, in write order.
func (c *CaptureSink) Records() [][]byte { return c.recs }
