package scrub

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/dumpfmt"
	"repro/internal/media"
)

// FsckOptions selects what the catalog is cross-checked against.
type FsckOptions struct {
	// Pool is the media pool holding the catalog's volumes (simulated
	// cartridges). Nil when volumes are host files.
	Pool *media.Pool
	// HaveVolume resolves file-backed volumes: it returns the volume's
	// recorded extent in bytes and whether it exists at all (backupctl
	// plugs os.Stat in here).
	HaveVolume func(label string) (extent int64, ok bool)
}

// Fsck cross-checks the catalog against the media pool without reading
// any stream data — the cheap structural half of an integrity pass.
// It reports, as typed findings: live sets whose media is gone
// (orphans), incrementals whose base was erased, seek-index entries
// pointing past the recorded media extent, and pool labels whose
// lifecycle state disagrees with what the media actually holds.
func Fsck(cat *catalog.Catalog, opts FsckOptions) []Finding {
	var out []Finding
	live := cat.Live()

	for _, ds := range live {
		out = append(out, fsckMedia(ds, opts)...)
		out = append(out, fsckIndex(cat, ds, opts)...)
		if f, bad := fsckBase(cat, ds); bad {
			out = append(out, f)
		}
	}
	if opts.Pool != nil {
		out = append(out, fsckPool(opts.Pool)...)
	}
	return dedupe(out)
}

// fsckMedia verifies a live set's volumes are producible.
func fsckMedia(ds catalog.DumpSet, opts FsckOptions) []Finding {
	var out []Finding
	for _, ref := range ds.Media {
		if opts.HaveVolume != nil {
			if _, ok := opts.HaveVolume(ref.Volume); !ok {
				out = append(out, Finding{Kind: OrphanSet, SetID: ds.ID,
					Volume: ref.Volume, Record: -1, Detail: "volume is missing"})
			}
			continue
		}
		if opts.Pool == nil {
			continue
		}
		v, ok := opts.Pool.Volume(ref.Volume)
		switch {
		case !ok || v.Cart == nil:
			out = append(out, Finding{Kind: OrphanSet, SetID: ds.ID,
				Volume: ref.Volume, Record: -1, Detail: "pool cannot mount volume"})
		case v.State == media.Scratch:
			out = append(out, Finding{Kind: OrphanSet, SetID: ds.ID,
				Volume: ref.Volume, Record: -1, Detail: "volume was reclaimed to scratch"})
		case int(ref.Start) >= v.Cart.Index():
			out = append(out, Finding{Kind: IndexPastExtent, SetID: ds.ID,
				Volume: ref.Volume, Record: int(ref.Start),
				Detail: fmt.Sprintf("start %d past media extent %d", ref.Start, v.Cart.Index())})
		}
	}
	return out
}

// fsckIndex verifies the set's seek index: file-index units must land
// inside the stream's recorded byte extent, and a file-backed volume
// must be at least as large as the stream it claims to hold.
func fsckIndex(cat *catalog.Catalog, ds catalog.DumpSet, opts FsckOptions) []Finding {
	var out []Finding
	for _, e := range cat.FileIndex(ds.ID) {
		if e.Unit*dumpfmt.TPBSize >= ds.Bytes && ds.Bytes > 0 {
			out = append(out, Finding{Kind: IndexPastExtent, SetID: ds.ID, Record: -1,
				Detail: fmt.Sprintf("index entry %q at unit %d past stream extent %d bytes",
					e.Path, e.Unit, ds.Bytes)})
		}
	}
	if opts.HaveVolume != nil && len(ds.Media) == 1 {
		if ext, ok := opts.HaveVolume(ds.Media[0].Volume); ok && ext < ds.Bytes {
			out = append(out, Finding{Kind: IndexPastExtent, SetID: ds.ID,
				Volume: ds.Media[0].Volume, Record: -1,
				Detail: fmt.Sprintf("volume holds %d bytes, catalog says %d", ext, ds.Bytes)})
		}
	}
	return out
}

// fsckBase verifies a live incremental's base link still resolves to
// an unexpired set.
func fsckBase(cat *catalog.Catalog, ds catalog.DumpSet) (Finding, bool) {
	if ds.Full() {
		return Finding{}, false
	}
	var base *catalog.DumpSet
	for _, b := range cat.Sets() {
		b := b
		if b.Engine != ds.Engine || b.FSID != ds.FSID || b.ID >= ds.ID {
			continue
		}
		if ds.Engine == catalog.Image {
			if b.Gen != ds.BaseGen {
				continue
			}
		} else if b.Date != ds.BaseDate {
			continue
		}
		if base == nil || b.ID > base.ID {
			base = &b
		}
	}
	switch {
	case base == nil:
		return Finding{Kind: MissingBase, SetID: ds.ID, Record: -1,
			Detail: "base set is not in the catalog"}, true
	default:
		if _, dead := cat.Expired(base.ID); dead {
			return Finding{Kind: MissingBase, SetID: ds.ID, Record: -1,
				Detail: fmt.Sprintf("base set %d is expired", base.ID)}, true
		}
	}
	return Finding{}, false
}

// fsckPool verifies each pool label's lifecycle state against the
// media it is bound to: an active (or quarantined) volume holding live
// sets must carry recorded data, and a scratch volume must be blank.
func fsckPool(pool *media.Pool) []Finding {
	var out []Finding
	for _, v := range pool.Volumes() {
		if v.Cart == nil {
			continue
		}
		switch {
		case (v.State == media.Active || v.State == media.Quarantined) &&
			len(v.Sets) > 0 && v.Cart.Bytes() == 0:
			out = append(out, Finding{Kind: PoolStateMismatch, Volume: v.Label, Record: -1,
				Detail: fmt.Sprintf("pool says %s with %d set(s) but media is blank", v.State, len(v.Sets))})
		case v.State == media.Scratch && v.Cart.Bytes() > 0:
			out = append(out, Finding{Kind: PoolStateMismatch, Volume: v.Label, Record: -1,
				Detail: "pool says scratch but media holds data"})
		}
	}
	return out
}
