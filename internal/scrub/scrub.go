// Package scrub is the end-to-end integrity subsystem: a scheduled
// media scrubber that re-reads every catalogued dump set and verifies
// it before a restore needs it, a catalog↔media fsck cross-checking
// the two sources of truth, and automated repair — rewrite damaged
// records from a replica of the stream, or degrade gracefully by
// marking the set Damaged in the catalog and quarantining its volumes
// so the restore planner routes around them.
//
// The paper's opening horror story is tapes that sat unread for a
// year and turned out rotten at restore time. The scrubber closes
// that window: latent faults (injectable via tape.FaultConfig and
// Cartridge.InjectLatentFault) are found on the schedule's clock, not
// the disaster's.
package scrub

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/catalog"
	"repro/internal/dumpfmt"
	"repro/internal/media"
	"repro/internal/obs"
	"repro/internal/physical"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/tape"
)

// FindingKind classifies one integrity finding.
type FindingKind int

const (
	// MediaFault is an unreadable record: the drive's ECC gave up on a
	// spot of tape (a latched persistent read error).
	MediaFault FindingKind = iota + 1
	// StreamCorrupt is a stream that reads but fails its own format
	// checks: CRC framing, header checksums, resynced units, torn end.
	StreamCorrupt
	// ByteCountMismatch is a stream that terminated cleanly but carried
	// fewer bytes than the catalog recorded for the set.
	ByteCountMismatch
	// OrphanSet is a live catalog set whose media the pool cannot
	// produce: unknown label, unbound cartridge, or scratch/blank media.
	OrphanSet
	// MissingBase is a live incremental whose base set is gone from the
	// catalog or expired — retention or operator error broke the chain.
	MissingBase
	// IndexPastExtent is a seek-index entry (media start position or
	// file-index unit) pointing past the recorded extent.
	IndexPastExtent
	// PoolStateMismatch is a pool label whose lifecycle state disagrees
	// with what the catalog's media events imply the media holds.
	PoolStateMismatch
)

func (k FindingKind) String() string {
	switch k {
	case MediaFault:
		return "media-fault"
	case StreamCorrupt:
		return "stream-corrupt"
	case ByteCountMismatch:
		return "byte-count-mismatch"
	case OrphanSet:
		return "orphan-set"
	case MissingBase:
		return "missing-base"
	case IndexPastExtent:
		return "index-past-extent"
	case PoolStateMismatch:
		return "pool-state-mismatch"
	}
	return fmt.Sprintf("finding(%d)", int(k))
}

// Finding is one typed integrity problem.
type Finding struct {
	Kind   FindingKind
	SetID  uint64 // 0 when the finding is not about one set
	Volume string // "" when not media-located
	Record int    // raw media record index; -1 when unknown
	Detail string
}

func (f Finding) String() string {
	s := f.Kind.String()
	if f.SetID != 0 {
		s += fmt.Sprintf(" set %d", f.SetID)
	}
	if f.Volume != "" {
		s += fmt.Sprintf(" volume %q", f.Volume)
		if f.Record >= 0 {
			s += fmt.Sprintf(" record %d", f.Record)
		}
	}
	if f.Detail != "" {
		s += ": " + f.Detail
	}
	return s
}

// Report is the outcome of one scrub pass.
type Report struct {
	// Sets is how many live sets were scanned.
	Sets int
	// BytesScanned is stream bytes re-read off media.
	BytesScanned int64
	// Repaired lists findings fixed in place (and re-verified clean).
	Repaired []Finding
	// Findings lists problems that remain after repair — the scan
	// findings of sets that had to be degraded, plus fsck findings.
	Findings []Finding
	// Damaged lists sets newly marked Damaged in the catalog.
	Damaged []uint64
	// Quarantined lists volumes newly quarantined in the pool.
	Quarantined []string
}

// Unrepaired returns the findings no repair resolved; a nonzero count
// is what turns a backupctl scrub/fsck exit nonzero.
func (r *Report) Unrepaired() []Finding { return r.Findings }

func (r *Report) String() string {
	return fmt.Sprintf("scrub: %d set(s), %d bytes; %d repaired, %d unrepaired, %d damaged, %d quarantined",
		r.Sets, r.BytesScanned, len(r.Repaired), len(r.Findings), len(r.Damaged), len(r.Quarantined))
}

// RecordSource supplies one dump set's stream records, io.EOF at end —
// the subset of tape/stream sources the verifiers need.
type RecordSource interface {
	ReadRecord() ([]byte, error)
}

// Config wires a Scrubber to the catalog and pool it guards.
type Config struct {
	Catalog *catalog.Catalog
	Pool    *media.Pool
	// Env builds the maintenance drive (nil = untimed reads).
	Env *sim.Env
	// Params is the maintenance drive's model (zero = DefaultParams).
	Params tape.Params
	// Name prefixes the maintenance drive and spans (default "scrub").
	Name string
	// Replicas are stream-record redundancy sources tried in order for
	// in-place repair — the -standby mirror, a RAID rebuild, anything
	// that can produce the set's byte-identical record list.
	Replicas []Replica
	// PauseEvery is how many scanned bytes between rate-limit pauses
	// (default 8 MiB) so scrubbing never starves live dumps of drive
	// time; Pause is the pause length (default 250ms of virtual time).
	PauseEvery int64
	Pause      time.Duration
	// Now supplies catalog timestamps for damage/quarantine records
	// (default: the filesystem clock is not reachable from here, 0).
	Now func() int64
}

// Scrubber runs integrity passes.
type Scrubber struct {
	cfg Config
}

// New validates cfg and returns a Scrubber.
func New(cfg Config) (*Scrubber, error) {
	if cfg.Catalog == nil || cfg.Pool == nil {
		return nil, fmt.Errorf("scrub: catalog and pool are required")
	}
	if cfg.Params.Rate == 0 {
		cfg.Params = tape.DefaultParams()
	}
	if cfg.Name == "" {
		cfg.Name = "scrub"
	}
	if cfg.PauseEvery <= 0 {
		cfg.PauseEvery = 8 << 20
	}
	if cfg.Pause <= 0 {
		cfg.Pause = 250 * time.Millisecond
	}
	return &Scrubber{cfg: cfg}, nil
}

func (s *Scrubber) now() int64 {
	if s.cfg.Now != nil {
		return s.cfg.Now()
	}
	return 0
}

// Run executes one full integrity pass: scan every live, undamaged
// set's media end to end; attempt in-place repair of anything found
// (re-verifying after); degrade what cannot be repaired (mark the set
// Damaged, quarantine its volumes); then fsck the catalog against the
// pool. Already-damaged sets are skipped — their verdict is in.
func (s *Scrubber) Run(ctx context.Context) (*Report, error) {
	ctx, span := obs.Start(ctx, s.cfg.Name+".run")
	defer span.End()
	m := obs.MetricsFrom(ctx)
	rep := &Report{}
	for _, ds := range s.cfg.Catalog.Live() {
		if _, bad := s.cfg.Catalog.Damaged(ds.ID); bad {
			continue
		}
		findings, n, err := s.scanSet(ctx, ds)
		if err != nil {
			return nil, err
		}
		rep.Sets++
		rep.BytesScanned += n
		m.Counter("scrub_bytes_total", nil).Add(n)
		if len(findings) == 0 {
			continue
		}
		m.Counter("scrub_errors_total", nil).Add(int64(len(findings)))
		if s.repairSet(ctx, ds) {
			// Trust nothing: the set counts as repaired only if a fresh
			// scan of the media comes back clean.
			re, n2, err := s.scanSet(ctx, ds)
			rep.BytesScanned += n2
			if err == nil && len(re) == 0 {
				if err := s.cfg.Catalog.MarkRepaired(ds.ID, s.now(),
					fmt.Sprintf("scrub repaired %d finding(s)", len(findings))); err != nil {
					return nil, err
				}
				rep.Repaired = append(rep.Repaired, findings...)
				m.Counter("scrub_repairs_total", nil).Inc()
				continue
			}
			if err != nil {
				return nil, err
			}
			findings = re
		}
		rep.Findings = append(rep.Findings, findings...)
		if err := s.degrade(ds, findings, rep, m); err != nil {
			return nil, err
		}
	}
	fsck := Fsck(s.cfg.Catalog, FsckOptions{Pool: s.cfg.Pool})
	rep.Findings = append(rep.Findings, fsck...)
	m.Counter("scrub_errors_total", nil).Add(int64(len(fsck)))
	span.SetAttr("sets", rep.Sets)
	span.SetAttr("bytes", rep.BytesScanned)
	span.SetAttr("unrepaired", len(rep.Findings))
	return rep, nil
}

// degrade marks a set Damaged and quarantines the implicated volumes:
// those named by media-located findings, or — when the corruption
// cannot be pinned to a spot (a stream-level checksum failure) — every
// volume the set touches.
func (s *Scrubber) degrade(ds catalog.DumpSet, findings []Finding, rep *Report, m *obs.Registry) error {
	detail := findings[0].String()
	if len(findings) > 1 {
		detail = fmt.Sprintf("%s (+%d more)", detail, len(findings)-1)
	}
	if err := s.cfg.Catalog.MarkDamaged(ds.ID, s.now(), detail); err != nil {
		return err
	}
	rep.Damaged = append(rep.Damaged, ds.ID)
	vols := map[string]bool{}
	for _, f := range findings {
		if f.Volume != "" {
			vols[f.Volume] = true
		}
	}
	if len(vols) == 0 {
		for _, ref := range ds.Media {
			vols[ref.Volume] = true
		}
	}
	for _, ref := range ds.Media { // deterministic order
		if !vols[ref.Volume] {
			continue
		}
		vols[ref.Volume] = false
		v, ok := s.cfg.Pool.Volume(ref.Volume)
		already := ok && v.State == media.Quarantined
		if err := s.cfg.Pool.Quarantine(ref.Volume, s.now()); err != nil {
			return err
		}
		if !already {
			rep.Quarantined = append(rep.Quarantined, ref.Volume)
			m.Counter("scrub_quarantines_total", nil).Inc()
		}
	}
	return nil
}

// scanSet mounts a set's media on a maintenance drive and re-reads its
// stream end to end, collecting findings. The heavy lifting is the
// format verifiers; this layers media-fault capture, rate limiting and
// byte accounting around them.
func (s *Scrubber) scanSet(ctx context.Context, ds catalog.DumpSet) ([]Finding, int64, error) {
	_, span := obs.Start(ctx, s.cfg.Name+".set")
	defer span.End()
	span.SetAttr("set", ds.ID)
	span.SetAttr("engine", ds.Engine.String())

	// Media the pool cannot produce is a finding, not an error: the
	// scrubber's job is to report exactly this.
	var findings []Finding
	drive := tape.NewDrive(s.cfg.Env, s.cfg.Name+"/maint", s.cfg.Params)
	for _, ref := range ds.Media {
		v, ok := s.cfg.Pool.Volume(ref.Volume)
		if !ok || v.Cart == nil {
			findings = append(findings, Finding{Kind: OrphanSet, SetID: ds.ID,
				Volume: ref.Volume, Record: -1, Detail: "pool cannot mount volume"})
			continue
		}
		drive.AddCartridges(v.Cart)
	}
	if len(findings) > 0 {
		return findings, 0, nil
	}

	src := &scanSource{
		drive: drive, proc: sim.ProcFrom(ctx), refs: ds.Media,
		retry:      storage.DefaultRetryPolicy(),
		pauseEvery: s.cfg.PauseEvery, pause: s.cfg.Pause,
	}
	findings = append(findings, verifyStream(ctx, ds, src)...)
	findings = append(findings, src.findings(ds.ID)...)
	return dedupe(findings), src.bytes, nil
}

// VerifySetStream verifies one dump set's stream from an arbitrary
// record source — the non-tape entry (backupctl's stream files). It
// returns format-level findings only; media faults belong to sources
// that can surface them.
func VerifySetStream(ctx context.Context, ds catalog.DumpSet, src RecordSource) []Finding {
	return verifyStream(ctx, ds, &countingSource{src: src})
}

// verifyStream runs the engine's format verifier over the stream and
// translates the outcome into findings.
func verifyStream(ctx context.Context, ds catalog.DumpSet, src interface {
	RecordSource
	count() int64
}) []Finding {
	var findings []Finding
	if ds.Engine == catalog.Image {
		if _, err := physical.VerifyStreamCtx(ctx, src); err != nil && !isMediaErr(err) {
			findings = append(findings, Finding{Kind: StreamCorrupt, SetID: ds.ID,
				Record: -1, Detail: err.Error()})
		}
	} else {
		r := dumpfmt.NewReader(src)
		err := drainLogical(r)
		if err != nil && !isMediaErr(err) {
			findings = append(findings, Finding{Kind: StreamCorrupt, SetID: ds.ID,
				Record: -1, Detail: err.Error()})
		}
		if n := r.Skipped(); n > 0 {
			findings = append(findings, Finding{Kind: StreamCorrupt, SetID: ds.ID,
				Record: -1, Detail: fmt.Sprintf("%d corrupt unit(s) resynced over", n)})
		}
	}
	// Fewer bytes than the catalog recorded means part of the stream is
	// gone; only meaningful when nothing louder already fired.
	if len(findings) == 0 && src.count() < ds.Bytes {
		findings = append(findings, Finding{Kind: ByteCountMismatch, SetID: ds.ID,
			Record: -1, Detail: fmt.Sprintf("catalog says %d bytes, media yields %d", ds.Bytes, src.count())})
	}
	return findings
}

// drainLogical walks a logical dump stream to its TS_END, consuming
// every header's data segments; header checksums are verified by the
// reader as it goes.
func drainLogical(r *dumpfmt.Reader) error {
	for {
		h, err := r.NextHeader()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if h.Type == dumpfmt.TSEnd {
			return nil
		}
		present := 0
		for _, a := range h.Addrs {
			if a == 1 {
				present++
			}
		}
		if present == 0 {
			continue
		}
		if _, err := r.ReadSegments(present); err != nil && err != io.ErrUnexpectedEOF {
			return err
		}
	}
}

func isMediaErr(err error) bool {
	return errors.Is(err, tape.ErrMediaRead) || errors.Is(err, tape.ErrMediaWrite)
}

// dedupe collapses findings that name the same (kind, volume, record).
func dedupe(in []Finding) []Finding {
	seen := map[string]bool{}
	var out []Finding
	for _, f := range in {
		k := fmt.Sprintf("%d|%d|%s|%d", f.Kind, f.SetID, f.Volume, f.Record)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, f)
	}
	return out
}

// countingSource adapts a bare RecordSource with byte accounting.
type countingSource struct {
	src   RecordSource
	bytes int64
}

func (c *countingSource) ReadRecord() ([]byte, error) {
	rec, err := c.src.ReadRecord()
	c.bytes += int64(len(rec))
	return rec, err
}

func (c *countingSource) count() int64 { return c.bytes }

// scanSource walks a set's MediaRefs on the maintenance drive like the
// restore executor's source, but never gives up on a persistent media
// fault: the damaged record is logged as a finding, the head spaces
// past it, and the scan keeps going — the scrubber wants the full
// damage map, not the first hit. Reads are rate-limited by sleeping
// the configured pause every pauseEvery bytes.
type scanSource struct {
	drive *tape.Drive
	proc  *sim.Proc
	refs  []catalog.MediaRef
	cur   int
	ready bool
	retry storage.RetryPolicy

	bytes      int64
	pauseEvery int64
	pause      time.Duration
	sincePause int64
	damage     []Finding // volume+record stamped; SetID filled later
}

func (s *scanSource) count() int64 { return s.bytes }

func (s *scanSource) findings(setID uint64) []Finding {
	out := make([]Finding, len(s.damage))
	for i, f := range s.damage {
		f.SetID = setID
		out[i] = f
	}
	return out
}

func (s *scanSource) mount(label string) error {
	if c := s.drive.Loaded(); c != nil && c.Label == label {
		return nil
	}
	tries := len(s.drive.Stacker()) + 1
	for i := 0; i < tries; i++ {
		if err := s.drive.Load(s.proc); err != nil {
			return err
		}
		if c := s.drive.Loaded(); c != nil && c.Label == label {
			return nil
		}
	}
	return fmt.Errorf("scrub: volume %q is not in the maintenance drive", label)
}

func (s *scanSource) position() error {
	ref := s.refs[s.cur]
	if err := s.mount(ref.Volume); err != nil {
		return err
	}
	s.drive.Rewind(s.proc)
	if ref.Start > 0 {
		if err := s.drive.SpaceRecords(s.proc, int(ref.Start)); err != nil {
			return err
		}
	}
	s.ready = true
	return nil
}

// ReadRecord implements dumpfmt.Source and physical.Source.
func (s *scanSource) ReadRecord() ([]byte, error) {
	attempt := 0
	for {
		if s.cur >= len(s.refs) {
			return nil, io.EOF
		}
		if !s.ready {
			if err := s.position(); err != nil {
				return nil, err
			}
		}
		rec, err := s.drive.ReadRecord(s.proc)
		var me *tape.MediaError
		switch {
		case err == nil:
			s.bytes += int64(len(rec))
			s.sincePause += int64(len(rec))
			if s.sincePause >= s.pauseEvery {
				s.sincePause = 0
				if s.proc != nil {
					s.proc.Sleep(s.pause)
				}
			}
			return rec, nil
		case errors.Is(err, tape.ErrFileMark):
			continue
		case errors.Is(err, tape.ErrEndOfTape):
			s.cur++
			s.ready = false
		case tape.IsTransientMedia(err):
			attempt++
			if attempt > s.retry.MaxRetries {
				return nil, err
			}
			if s.proc != nil {
				s.proc.Sleep(s.retry.Delay(attempt))
			}
		case errors.As(err, &me) && me.Read:
			// Persistent fault: log it, space past, keep scanning.
			vol := ""
			if c := s.drive.Loaded(); c != nil {
				vol = c.Label
			}
			s.damage = append(s.damage, Finding{Kind: MediaFault,
				Volume: vol, Record: me.Record, Detail: "unreadable record"})
			if serr := s.drive.SpaceRecords(s.proc, 1); serr != nil {
				return nil, serr
			}
			attempt = 0
		default:
			return nil, err
		}
	}
}

// repairSet tries each redundancy source in order until one produces
// the set's record list and the media walk applies cleanly.
func (s *Scrubber) repairSet(ctx context.Context, ds catalog.DumpSet) bool {
	for _, rep := range s.cfg.Replicas {
		recs, ok := rep.Fetch(ctx, ds.ID)
		if !ok || len(recs) == 0 {
			continue
		}
		if s.repairFrom(ds, recs) {
			return true
		}
	}
	return false
}

// repairFrom rewrites the set's media records from a replica's record
// list. Dump streams land contiguously: a set's records occupy
// [ref.Start, …) on each of its volumes in order, and a failed tape
// write never lands, so the k-th replica record corresponds exactly to
// the k-th data record of the walk. Unreadable or byte-divergent
// records are rewritten in place (clearing latched faults); the repair
// succeeds only if every replica record found its spot.
func (s *Scrubber) repairFrom(ds catalog.DumpSet, recs [][]byte) bool {
	k := 0
	for _, ref := range ds.Media {
		v, ok := s.cfg.Pool.Volume(ref.Volume)
		if !ok || v.Cart == nil {
			return false
		}
		for raw := int(ref.Start); k < len(recs); raw++ {
			data, mark, unreadable, ok := v.Cart.RecordAt(raw)
			if !ok || mark {
				break // end of this volume's span
			}
			if unreadable || !bytes.Equal(data, recs[k]) {
				if !v.Cart.RepairRecordAt(raw, recs[k]) {
					return false
				}
			}
			k++
		}
	}
	return k == len(recs)
}
