package scrub_test

import (
	"context"
	"io"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/dumpfmt"
	"repro/internal/media"
	"repro/internal/scrub"
	"repro/internal/tape"
)

// driveSink adapts a bare drive to the stream sink shape, untimed.
type driveSink struct{ d *tape.Drive }

func (s driveSink) WriteRecord(data []byte) error { return s.d.WriteRecord(nil, data) }
func (s driveSink) NextVolume() error             { return s.d.Load(nil) }

// rig is one cartridge holding one logical dump set, with its catalog,
// pool and stream mirror.
type rig struct {
	cat     *catalog.Catalog
	store   *catalog.MemStore
	pool    *media.Pool
	cart    *tape.Cartridge
	mirror  *scrub.Store
	setID   uint64
	start   int // raw index of the set's first record
	records int // records the stream occupies
}

// newRig writes a small valid logical dump stream onto a cartridge and
// catalogs it, mirroring the records for repair.
func newRig(t *testing.T) *rig {
	t.Helper()
	cart := tape.NewCartridge("vol0")
	drive := tape.NewDrive(nil, "rig", tape.Params{Rate: 1 << 20})
	drive.AddCartridges(cart)
	if err := drive.Load(nil); err != nil {
		t.Fatal(err)
	}
	capture := &scrub.CaptureSink{Sink: driveSink{drive}}
	start := cart.Index()
	w, err := dumpfmt.NewWriter(capture, "rig", 1000, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	seg := make([]byte, dumpfmt.TPBSize)
	for i := range seg {
		seg[i] = byte(i)
	}
	for f := 0; f < 4; f++ {
		if err := w.WriteHeader(&dumpfmt.Header{Type: dumpfmt.TSInode,
			Inumber: uint32(10 + f), Count: 3, Addrs: []byte{1, 1, 1}}); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 3; j++ {
			if err := w.WriteSegment(seg); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	store := &catalog.MemStore{}
	cat, err := catalog.Open(store)
	if err != nil {
		t.Fatal(err)
	}
	id, err := cat.AppendDumpSet(catalog.DumpSet{
		Engine: catalog.Logical, FSID: "fs", Snap: "s0", Level: 0, Date: 1000,
		Bytes: w.Written(), Units: 4,
		Media: []catalog.MediaRef{{Volume: "vol0", Start: int64(start)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	pool := media.NewPool("p", cat)
	if err := pool.Register("vol0", cart, 0); err != nil {
		t.Fatal(err)
	}
	if err := pool.CommitSet(id, []string{"vol0"}, 1000); err != nil {
		t.Fatal(err)
	}
	mirror := scrub.NewStore()
	mirror.Put(id, capture.Records())
	return &rig{cat: cat, store: store, pool: pool, cart: cart, mirror: mirror,
		setID: id, start: start, records: cart.Index() - start}
}

func (r *rig) scrubber(t *testing.T, withMirror bool) *scrub.Scrubber {
	t.Helper()
	cfg := scrub.Config{Catalog: r.cat, Pool: r.pool}
	if withMirror {
		cfg.Replicas = []scrub.Replica{r.mirror}
	}
	s, err := scrub.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestScrubCleanPass(t *testing.T) {
	r := newRig(t)
	rep, err := r.scrubber(t, true).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sets != 1 || rep.BytesScanned == 0 {
		t.Fatalf("scanned %d sets, %d bytes", rep.Sets, rep.BytesScanned)
	}
	if len(rep.Findings) != 0 || len(rep.Repaired) != 0 {
		t.Fatalf("clean media produced findings: %+v", rep)
	}
}

func TestScrubRepairsLatentFault(t *testing.T) {
	r := newRig(t)
	if !r.cart.InjectLatentFault(r.start) {
		t.Fatal("inject failed")
	}
	rep, err := r.scrubber(t, true).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Repaired) == 0 {
		t.Fatalf("latent fault not repaired: %+v", rep)
	}
	if len(rep.Findings) != 0 || len(rep.Damaged) != 0 || len(rep.Quarantined) != 0 {
		t.Fatalf("repairable fault degraded the set: %+v", rep)
	}
	if _, bad := r.cat.Damaged(r.setID); bad {
		t.Fatal("set marked damaged after successful repair")
	}
	if r.cart.BadRecords() != 0 {
		t.Fatalf("%d latched records remain after repair", r.cart.BadRecords())
	}
	// The repair must be durable: a fresh pass finds nothing.
	rep2, err := r.scrubber(t, true).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Findings)+len(rep2.Repaired) != 0 {
		t.Fatalf("re-scan after repair not clean: %+v", rep2)
	}
}

func TestScrubRepairsSilentCorruption(t *testing.T) {
	r := newRig(t)
	// Flip bits without latching: only the stream's own checksums can
	// notice, and only the replica byte-compare can fix it.
	if !r.cart.CorruptRecordAt(r.start + 1) {
		t.Fatal("corrupt failed")
	}
	rep, err := r.scrubber(t, true).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Repaired) == 0 || len(rep.Findings) != 0 {
		t.Fatalf("silent corruption not repaired: %+v", rep)
	}
}

func TestScrubDegradesWithoutReplica(t *testing.T) {
	r := newRig(t)
	r.cart.InjectLatentFault(r.start)
	rep, err := r.scrubber(t, false).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Damaged) != 1 || rep.Damaged[0] != r.setID {
		t.Fatalf("set not marked damaged: %+v", rep)
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0] != "vol0" {
		t.Fatalf("volume not quarantined: %+v", rep)
	}
	if _, bad := r.cat.Damaged(r.setID); !bad {
		t.Fatal("catalog does not report the set damaged")
	}
	v, _ := r.pool.Volume("vol0")
	if v.State != media.Quarantined {
		t.Fatalf("pool state = %s, want quarantined", v.State)
	}
	// Quarantine is frozen: no reclaim, no erase.
	if got, err := r.pool.Reclaim(5000); err != nil || len(got) != 0 {
		t.Fatalf("Reclaim touched quarantined media: %v %v", got, err)
	}
	if err := r.pool.Erase("vol0", 5000); err == nil ||
		!strings.Contains(err.Error(), "quarantined") {
		t.Fatalf("Erase of quarantined volume: %v", err)
	}
	// A second pass skips the already-damaged set.
	rep2, err := r.scrubber(t, false).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Sets != 0 {
		t.Fatalf("damaged set re-scanned: %+v", rep2)
	}
}

func TestScrubQuarantineSurvivesReopen(t *testing.T) {
	r := newRig(t)
	r.cart.InjectLatentFault(r.start)
	if _, err := r.scrubber(t, false).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Replay the journal into a fresh catalog + pool: health and
	// quarantine must come back.
	cat2, err := catalog.Open(&catalog.MemStore{Buf: append([]byte(nil), r.store.Buf...)})
	if err != nil {
		t.Fatal(err)
	}
	if _, bad := cat2.Damaged(r.setID); !bad {
		t.Fatal("damage lost across journal replay")
	}
	pool2 := media.NewPool("p", cat2)
	v, ok := pool2.Volume("vol0")
	if !ok || v.State != media.Quarantined {
		t.Fatalf("quarantine lost across replay: %+v", v)
	}
}

func TestFsckFindings(t *testing.T) {
	r := newRig(t)
	// Orphan: a live set naming a volume the pool has never seen.
	orphanID, err := r.cat.AppendDumpSet(catalog.DumpSet{
		Engine: catalog.Logical, FSID: "fs", Snap: "s1", Level: 0, Date: 2000,
		Bytes: 100, Media: []catalog.MediaRef{{Volume: "ghost"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Missing base: an incremental whose base date matches nothing.
	mbID, err := r.cat.AppendDumpSet(catalog.DumpSet{
		Engine: catalog.Logical, FSID: "fs", Snap: "s2", Level: 1, Date: 3000,
		BaseDate: 77, Bytes: 100, Media: []catalog.MediaRef{{Volume: "vol0", Start: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Index past extent: a file-index unit beyond the set's stream.
	if err := r.cat.AppendFileIndex(r.setID, []catalog.FileIndexEntry{
		{Path: "/late", Ino: 9, Unit: 1 << 20},
	}); err != nil {
		t.Fatal(err)
	}
	got := map[scrub.FindingKind]int{}
	for _, f := range scrub.Fsck(r.cat, scrub.FsckOptions{Pool: r.pool}) {
		got[f.Kind]++
	}
	if got[scrub.OrphanSet] == 0 {
		t.Fatalf("orphan set %d not found: %v", orphanID, got)
	}
	if got[scrub.MissingBase] == 0 {
		t.Fatalf("missing base of set %d not found: %v", mbID, got)
	}
	if got[scrub.IndexPastExtent] == 0 {
		t.Fatalf("index-past-extent not found: %v", got)
	}

	// Pool mismatch: erase the cartridge behind the pool's back.
	r.cart.Erase()
	found := false
	for _, f := range scrub.Fsck(r.cat, scrub.FsckOptions{Pool: r.pool}) {
		if f.Kind == scrub.PoolStateMismatch && f.Volume == "vol0" {
			found = true
		}
	}
	if !found {
		t.Fatal("blank active media not reported as pool-state-mismatch")
	}
}

// memSource replays a record list, io.EOF at the end.
type memSource struct {
	recs [][]byte
	i    int
}

func (m *memSource) ReadRecord() ([]byte, error) {
	if m.i >= len(m.recs) {
		return nil, io.EOF
	}
	r := m.recs[m.i]
	m.i++
	return r, nil
}

func TestVerifySetStream(t *testing.T) {
	r := newRig(t)
	ds, _ := r.cat.Set(r.setID)
	recs, _ := r.mirror.Fetch(context.Background(), r.setID)
	if fs := scrub.VerifySetStream(context.Background(), ds, &memSource{recs: recs}); len(fs) != 0 {
		t.Fatalf("clean stream produced findings: %v", fs)
	}
	// Corrupt one record copy: the stream check must notice.
	bad := make([][]byte, len(recs))
	copy(bad, recs)
	c := append([]byte(nil), bad[1]...)
	for i := range c {
		c[i] ^= 0xFF
	}
	bad[1] = c
	if fs := scrub.VerifySetStream(context.Background(), ds, &memSource{recs: bad}); len(fs) == 0 {
		t.Fatal("corrupted stream passed verification")
	}
	// Truncated stream: fewer bytes than the catalog recorded.
	if fs := scrub.VerifySetStream(context.Background(), ds, &memSource{recs: recs[:1]}); len(fs) == 0 {
		t.Fatal("truncated stream passed verification")
	}
}
