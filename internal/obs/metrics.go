// Package obs is the observability layer: a metrics registry and a
// span tracer threaded through the stack via context. Both are
// virtual-clock aware — on a simulated run, spans are stamped in
// sim.Time and utilization gauges read the stations' accumulated busy
// time — and both degrade to no-ops when absent from the context, so
// the hot paths pay one nil check when nobody is watching.
//
// The registry favors pull-style collection: subsystems register
// closures over the counters they already keep (RegisterFunc), so
// instrumentation adds no work to the data path. Push-style Counter
// and Gauge handles exist for code that has no counter of its own.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels is one metric series' label set. Copied on registration.
type Labels map[string]string

// Kind classifies a metric for the Prometheus exporter.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "counter"
	}
}

// Counter is a push-style monotonic counter. A nil Counter (from a
// nil Registry) is a no-op.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a push-style instantaneous value. A nil Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the stored value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a push-style distribution with fixed bucket bounds.
// A nil Histogram is a no-op.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds; +Inf is implicit
	counts []int64   // len(bounds)+1, last is the overflow bucket
	sum    float64
	count  int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
}

// HistSnapshot is a histogram's frozen state.
type HistSnapshot struct {
	Bounds []float64
	Counts []int64 // cumulative per bound, then total
	Sum    float64
	Count  int64
}

func (h *Histogram) snapshot() *HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := &HistSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]int64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.count,
	}
	return s
}

// series is one labeled instance of a metric.
type series struct {
	labels Labels
	key    string // canonical sorted label rendering

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64 // pull collector; wins over the push forms
}

func (s *series) value() float64 {
	switch {
	case s.fn != nil:
		return s.fn()
	case s.counter != nil:
		return float64(s.counter.Value())
	case s.gauge != nil:
		return s.gauge.Value()
	}
	return 0
}

// family is every series sharing one metric name.
type family struct {
	name   string
	kind   Kind
	help   string
	series map[string]*series
	order  []string // registration order of series keys
}

// Registry holds metric families. The zero value is not usable; use
// NewRegistry. All methods are nil-safe: a nil *Registry hands back
// nil metric handles whose operations are no-ops, so callers can
// thread an optional registry without checking.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // registration order of family names
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelKey renders labels canonically (sorted by key).
func labelKey(l Labels) string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, l[k])
	}
	return b.String()
}

// getSeries finds or creates the (name, labels) series.
func (r *Registry) getSeries(name string, kind Kind, l Labels) *series {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	key := labelKey(l)
	s, ok := f.series[key]
	if !ok {
		cp := make(Labels, len(l))
		for k, v := range l {
			cp[k] = v
		}
		s = &series{labels: cp, key: key}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// Counter returns the push counter for (name, labels), creating it on
// first use. Nil receiver returns a nil (no-op) Counter.
func (r *Registry) Counter(name string, l Labels) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.getSeries(name, KindCounter, l)
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge returns the push gauge for (name, labels).
func (r *Registry) Gauge(name string, l Labels) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.getSeries(name, KindGauge, l)
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// Histogram returns the histogram for (name, labels) with the given
// bucket upper bounds (ascending; used only on first creation).
func (r *Registry) Histogram(name string, l Labels, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.getSeries(name, KindHistogram, l)
	if s.hist == nil {
		s.hist = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]int64, len(bounds)+1),
		}
	}
	return s.hist
}

// RegisterFunc installs a pull collector for (name, labels): fn is
// called at snapshot/export time. Re-registering the same series
// replaces the collector, so rebuilding a subsystem is idempotent.
func (r *Registry) RegisterFunc(name string, kind Kind, l Labels, fn func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.getSeries(name, kind, l)
	s.fn = fn
}

// SetHelp attaches a help string shown in the Prometheus export.
func (r *Registry) SetHelp(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		f.help = help
	}
}

// Point is one series' value in a snapshot.
type Point struct {
	Name   string
	Kind   Kind
	Labels Labels
	Value  float64
	Hist   *HistSnapshot // non-nil only for histograms
}

// Key renders the point as name{labels} for keyed lookups.
func (p Point) Key() string {
	key := labelKey(p.Labels)
	if key == "" {
		return p.Name
	}
	return p.Name + "{" + key + "}"
}

// Snapshot evaluates every series (running pull collectors) and
// returns them in registration order. Nil receiver returns nil.
func (r *Registry) Snapshot() []Point {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Point
	for _, name := range r.order {
		f := r.families[name]
		for _, key := range f.order {
			s := f.series[key]
			p := Point{Name: name, Kind: f.kind, Labels: s.labels, Value: s.value()}
			if s.hist != nil {
				p.Hist = s.hist.snapshot()
				p.Value = p.Hist.Sum
			}
			out = append(out, p)
		}
	}
	return out
}

// Sum evaluates and sums every series of the named family — the
// cross-label aggregate ("all disks", "all drives"). 0 when absent.
func (r *Registry) Sum(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		return 0
	}
	var total float64
	for _, key := range f.order {
		total += f.series[key].value()
	}
	return total
}

// Value evaluates one series. The second return reports existence.
func (r *Registry) Value(name string, l Labels) (float64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		return 0, false
	}
	s, ok := f.series[labelKey(l)]
	if !ok {
		return 0, false
	}
	return s.value(), true
}

// Has reports whether the named metric family exists.
func (r *Registry) Has(name string) bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.families[name]
	return ok
}

// promLabels renders a label set in Prometheus exposition syntax.
func promLabels(l Labels, extra ...string) string {
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var parts []string
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%q", k, l[k]))
	}
	parts = append(parts, extra...)
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus writes the registry in Prometheus text exposition
// format: # HELP / # TYPE headers followed by one line per series
// (histograms expand to _bucket/_sum/_count).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.order {
		f := r.families[name]
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, f.kind); err != nil {
			return err
		}
		for _, key := range f.order {
			s := f.series[key]
			if s.hist != nil {
				snap := s.hist.snapshot()
				cum := int64(0)
				for i, b := range snap.Bounds {
					cum += snap.Counts[i]
					le := fmt.Sprintf("le=%q", formatFloat(b))
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabels(s.labels, le), cum); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabels(s.labels, `le="+Inf"`), snap.Count); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, promLabels(s.labels), formatFloat(snap.Sum)); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", name, promLabels(s.labels), snap.Count); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", name, promLabels(s.labels), formatFloat(s.value())); err != nil {
				return err
			}
		}
	}
	return nil
}
