package obs

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	r.Counter("x_total", nil).Add(5)
	r.Gauge("g", nil).Set(1)
	r.Histogram("h", nil, []float64{1}).Observe(2)
	r.RegisterFunc("f", KindCounter, nil, func() float64 { return 1 })
	if got := r.Sum("x_total"); got != 0 {
		t.Fatalf("nil registry Sum = %v", got)
	}
	if pts := r.Snapshot(); pts != nil {
		t.Fatalf("nil registry Snapshot = %v", pts)
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatalf("nil registry WritePrometheus: %v", err)
	}
}

func TestCounterGaugeAndSum(t *testing.T) {
	r := NewRegistry()
	r.Counter("reads_total", Labels{"disk": "d0"}).Add(3)
	r.Counter("reads_total", Labels{"disk": "d1"}).Add(4)
	r.Gauge("busy_seconds", Labels{"disk": "d0"}).Set(1.5)
	if got := r.Sum("reads_total"); got != 7 {
		t.Fatalf("Sum(reads_total) = %v, want 7", got)
	}
	v, ok := r.Value("reads_total", Labels{"disk": "d1"})
	if !ok || v != 4 {
		t.Fatalf("Value(d1) = %v, %v", v, ok)
	}
	if _, ok := r.Value("reads_total", Labels{"disk": "d9"}); ok {
		t.Fatal("Value of absent series reported ok")
	}
	// Same (name, labels) returns the same counter.
	r.Counter("reads_total", Labels{"disk": "d0"}).Inc()
	if v, _ := r.Value("reads_total", Labels{"disk": "d0"}); v != 4 {
		t.Fatalf("shared counter = %v, want 4", v)
	}
}

func TestRegisterFuncPullAndReplace(t *testing.T) {
	r := NewRegistry()
	n := int64(10)
	r.RegisterFunc("pull_total", KindCounter, Labels{"v": "a"}, func() float64 { return float64(n) })
	if got := r.Sum("pull_total"); got != 10 {
		t.Fatalf("pull = %v", got)
	}
	n = 25
	if got := r.Sum("pull_total"); got != 25 {
		t.Fatalf("pull after mutation = %v", got)
	}
	// Re-registration replaces the collector (idempotent rebuilds).
	r.RegisterFunc("pull_total", KindCounter, Labels{"v": "a"}, func() float64 { return 99 })
	if got := r.Sum("pull_total"); got != 99 {
		t.Fatalf("pull after re-register = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", nil, []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops_total", Labels{"kind": "read", "disk": "d0"}).Add(2)
	r.SetHelp("ops_total", "operations served")
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP ops_total operations served",
		"# TYPE ops_total counter",
		`ops_total{disk="d0",kind="read"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestNilSpanAndTracerFromEmptyContext(t *testing.T) {
	ctx := context.Background()
	if tr := TracerFrom(ctx); tr != nil {
		t.Fatal("tracer from empty ctx")
	}
	ctx2, span := Start(ctx, "noop")
	if span != nil {
		t.Fatal("span without tracer")
	}
	if ctx2 != ctx {
		t.Fatal("ctx changed without tracer")
	}
	span.SetAttr("k", 1) // must not panic
	span.End()
	if r := MetricsFrom(ctx); r != nil {
		t.Fatal("registry from empty ctx")
	}
}

func TestSpanVirtualTimeStamps(t *testing.T) {
	env := sim.NewEnv()
	tr := NewTracer()
	env.Spawn("worker", func(p *sim.Proc) {
		ctx := WithTracer(sim.WithProc(context.Background(), p), tr)
		p.Sleep(10 * time.Millisecond)
		ctx, outer := Start(ctx, "outer.op")
		p.Sleep(40 * time.Millisecond)
		_, inner := Start(ctx, "outer.child")
		inner.SetAttr("bytes", 128)
		p.Sleep(5 * time.Millisecond)
		inner.End()
		outer.End()
	})
	env.Run()
	if tr.SpanCount() != 2 {
		t.Fatalf("spans = %d, want 2", tr.SpanCount())
	}
	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &parsed); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	byName := map[string]int{}
	for i, e := range parsed.TraceEvents {
		byName[e.Name] = i
	}
	child := parsed.TraceEvents[byName["outer.child"]]
	outer := parsed.TraceEvents[byName["outer.op"]]
	// Virtual stamps in microseconds: outer begins at 10ms, runs 45ms;
	// child begins at 50ms, runs 5ms — nested inside the parent.
	if outer.Ts != 10_000 || outer.Dur != 45_000 {
		t.Fatalf("outer ts/dur = %v/%v, want 10000/45000", outer.Ts, outer.Dur)
	}
	if child.Ts != 50_000 || child.Dur != 5_000 {
		t.Fatalf("child ts/dur = %v/%v, want 50000/5000", child.Ts, child.Dur)
	}
	if child.Ts < outer.Ts || child.Ts+child.Dur > outer.Ts+outer.Dur {
		t.Fatal("child span not nested within parent")
	}
	if child.Args["bytes"] != float64(128) {
		t.Fatalf("child args = %v", child.Args)
	}
	if _, ok := byName["thread_name"]; !ok {
		t.Fatal("no thread_name metadata event")
	}
}

func TestSpanWallClockFallback(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	_, span := Start(ctx, "wall.op")
	span.End()
	if tr.SpanCount() != 1 {
		t.Fatalf("spans = %d", tr.SpanCount())
	}
}

func TestSlowOpLog(t *testing.T) {
	env := sim.NewEnv()
	tr := NewTracer()
	tr.SlowThreshold = 100 * time.Millisecond
	var lines []string
	tr.SlowLog = func(line string) { lines = append(lines, line) }
	env.Spawn("slowpoke", func(p *sim.Proc) {
		ctx := WithTracer(sim.WithProc(context.Background(), p), tr)
		_, fast := Start(ctx, "op.fast")
		p.Sleep(time.Millisecond)
		fast.End()
		_, slow := Start(ctx, "op.slow")
		p.Sleep(time.Second)
		slow.End()
	})
	env.Run()
	if len(lines) != 1 || !strings.Contains(lines[0], "op.slow") {
		t.Fatalf("slow log = %v, want one op.slow line", lines)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	_, span := Start(ctx, "once")
	span.End()
	span.End()
	if tr.SpanCount() != 1 {
		t.Fatalf("double End recorded %d spans", tr.SpanCount())
	}
}
