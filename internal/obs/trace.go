package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/sim"
)

// Tracer collects spans. Timestamps come from the sim proc carried in
// the span's context when there is one — so a simulated dump renders
// on its virtual timeline — and otherwise from wall time relative to
// the tracer's creation.
//
// SlowThreshold, when set, turns on the slow-op log: every span whose
// duration (on whichever clock stamped it) meets the threshold is
// reported through SlowLog as it ends.
type Tracer struct {
	mu      sync.Mutex
	epoch   time.Time
	events  []traceEvent
	threads map[string]int // proc name -> synthetic tid
	tidseq  int

	// SlowThreshold enables the slow-op log for spans at least this
	// long. SlowLog receives one line per slow span; nil discards.
	SlowThreshold time.Duration
	SlowLog       func(line string)
}

// traceEvent is one completed span, Chrome trace_event shaped.
type traceEvent struct {
	name  string
	tid   int
	start time.Duration // since epoch (virtual or wall)
	dur   time.Duration
	args  map[string]any
}

// NewTracer creates a tracer with a wall-clock epoch of now.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now(), threads: map[string]int{}}
}

// now stamps the current time on the clock p lives on (virtual), or
// wall time since the epoch when p is nil.
func (t *Tracer) now(p *sim.Proc) time.Duration {
	if p != nil {
		return p.Now()
	}
	return time.Since(t.epoch)
}

// tidFor maps a proc to a stable synthetic thread id, so each sim
// process renders as its own track in the trace viewer.
func (t *Tracer) tidFor(p *sim.Proc) int {
	name := "main"
	if p != nil {
		name = p.Name()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tid, ok := t.threads[name]
	if !ok {
		t.tidseq++
		tid = t.tidseq
		t.threads[name] = tid
	}
	return tid
}

// Span is one timed operation. A nil Span (no tracer in the context)
// is a no-op, so instrumented code never branches on tracing.
type Span struct {
	tr    *Tracer
	name  string
	tid   int
	proc  *sim.Proc
	begin time.Duration

	mu    sync.Mutex
	attrs map[string]any
	ended bool
}

// SpanCount returns how many spans have completed.
func (t *Tracer) SpanCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

type tracerKey struct{}
type spanKey struct{}
type metricsKey struct{}

// WithTracer returns ctx carrying t.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom extracts the tracer from ctx, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// WithMetrics returns ctx carrying r.
func WithMetrics(ctx context.Context, r *Registry) context.Context {
	return context.WithValue(ctx, metricsKey{}, r)
}

// MetricsFrom extracts the registry from ctx, or nil — whose methods
// are no-ops, so callers use the result unconditionally.
func MetricsFrom(ctx context.Context) *Registry {
	r, _ := ctx.Value(metricsKey{}).(*Registry)
	return r
}

// SpanFrom extracts the innermost open span from ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// Start opens a span named name. The begin timestamp is taken from
// the sim proc in ctx (virtual time) or wall time. The returned
// context carries the span, so child Starts nest under it in the
// rendered trace. With no tracer in ctx, both returns are usable:
// ctx unchanged and a nil (no-op) span.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	tr := TracerFrom(ctx)
	if tr == nil {
		return ctx, nil
	}
	p := sim.ProcFrom(ctx)
	s := &Span{tr: tr, name: name, proc: p, tid: tr.tidFor(p), begin: tr.now(p)}
	return context.WithValue(ctx, spanKey{}, s), s
}

// SetAttr records a key/value attribute shown in the trace viewer's
// args pane (bytes, blocks, retries, shard...). No-op on nil.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.attrs == nil {
		s.attrs = make(map[string]any)
	}
	s.attrs[key] = value
}

// End closes the span, records it, and fires the slow-op log when the
// duration meets the tracer's threshold. Idempotent; no-op on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()

	end := s.tr.now(s.proc)
	dur := end - s.begin
	if dur < 0 {
		dur = 0
	}
	s.tr.mu.Lock()
	s.tr.events = append(s.tr.events, traceEvent{
		name: s.name, tid: s.tid, start: s.begin, dur: dur, args: attrs,
	})
	slow := s.tr.SlowThreshold > 0 && dur >= s.tr.SlowThreshold
	logf := s.tr.SlowLog
	threshold := s.tr.SlowThreshold
	s.tr.mu.Unlock()
	if slow && logf != nil {
		logf(fmt.Sprintf("slow op: %s took %v (threshold %v)", s.name, dur, threshold))
	}
}

// chromeEvent is the trace_event JSON wire shape.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// Slug folds a human-readable stage name ("Reading directories") into
// a span-name component ("reading_directories").
func Slug(name string) string {
	b := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'A' && c <= 'Z':
			b = append(b, c+'a'-'A')
		case c >= 'a' && c <= 'z' || c >= '0' && c <= '9':
			b = append(b, c)
		default:
			if len(b) > 0 && b[len(b)-1] != '_' {
				b = append(b, '_')
			}
		}
	}
	for len(b) > 0 && b[len(b)-1] == '_' {
		b = b[:len(b)-1]
	}
	return string(b)
}

// category is the span-name prefix up to the first dot, used as the
// Chrome trace category ("logical", "physical", "ndmp", ...).
func category(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '.' {
			return name[:i]
		}
	}
	return name
}

// WriteChromeTrace exports every completed span as Chrome trace_event
// JSON ("X" complete events plus thread-name metadata), loadable in
// chrome://tracing and Perfetto. Timestamps are microseconds on the
// clock that stamped the span (virtual for simulated runs).
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	events := append([]traceEvent(nil), t.events...)
	threads := make(map[string]int, len(t.threads))
	for name, tid := range t.threads {
		threads[name] = tid
	}
	t.mu.Unlock()

	var out chromeTrace
	names := make([]string, 0, len(threads))
	for name := range threads {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool { return threads[names[i]] < threads[names[j]] })
	for _, name := range names {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: threads[name],
			Args: map[string]any{"name": name},
		})
	}
	for _, e := range events {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: e.name, Cat: category(e.name), Ph: "X",
			Ts:  float64(e.start) / float64(time.Microsecond),
			Dur: float64(e.dur) / float64(time.Microsecond),
			Pid: 1, Tid: e.tid, Args: e.args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&out)
}
