package wafl

import "container/list"

// blockCache is an LRU cache of physical blocks. Because the
// filesystem is copy-on-write, a block's contents never change while
// it is referenced, which makes coherence trivial: entries are
// inserted on read and on write, and a freed-then-reused block is
// simply overwritten by the write that reuses it.
type blockCache struct {
	max    int
	lru    *list.List // of cacheEntry, front = most recent
	index  map[BlockNo]*list.Element
	hits   int64
	misses int64
}

type cacheEntry struct {
	bno  BlockNo
	data []byte
}

func newBlockCache(maxBlocks int) *blockCache {
	return &blockCache{
		max:   maxBlocks,
		lru:   list.New(),
		index: make(map[BlockNo]*list.Element),
	}
}

// get returns the cached contents of bno, or nil. The returned slice
// is owned by the cache; callers must not modify it.
func (c *blockCache) get(bno BlockNo) []byte {
	if e, ok := c.index[bno]; ok {
		c.lru.MoveToFront(e)
		c.hits++
		return e.Value.(*cacheEntry).data
	}
	c.misses++
	return nil
}

// put inserts or refreshes bno with data, copying it.
func (c *blockCache) put(bno BlockNo, data []byte) {
	if c.max <= 0 {
		return
	}
	if e, ok := c.index[bno]; ok {
		copy(e.Value.(*cacheEntry).data, data)
		c.lru.MoveToFront(e)
		return
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	c.index[bno] = c.lru.PushFront(&cacheEntry{bno: bno, data: cp})
	for c.lru.Len() > c.max {
		old := c.lru.Back()
		c.lru.Remove(old)
		delete(c.index, old.Value.(*cacheEntry).bno)
	}
}

// drop removes bno from the cache (used when a block is freed).
func (c *blockCache) drop(bno BlockNo) {
	if e, ok := c.index[bno]; ok {
		c.lru.Remove(e)
		delete(c.index, bno)
	}
}

// stats returns cumulative hits and misses.
func (c *blockCache) stats() (hits, misses int64) { return c.hits, c.misses }
