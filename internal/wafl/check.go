package wafl

import (
	"context"
	"fmt"
)

// Check is the fsck-style consistency checker. The paper notes WAFL
// needs no boot-time fsck because every consistency point is
// self-consistent; Check verifies that property after every test and
// after crash recovery, image restore and incremental application.
//
// It verifies, over the on-disk state plus staged changes:
//   - every block referenced by the active filesystem (file data,
//     pointer blocks, the inode file, the block-map file, fsinfo) has
//     its active bit set, and no block is referenced twice;
//   - every block with the active bit set is referenced;
//   - directory structure: entries point at allocated inodes, "." and
//     ".." are correct, every allocated inode is reachable from the
//     root, and link counts match;
//   - file sizes are consistent with their block trees.
//
// Check returns a list of problems (empty means consistent).
func (fs *FS) Check(ctx context.Context) ([]string, error) {
	var problems []string
	addf := func(format string, args ...interface{}) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	// Checking is only valid against committed state.
	if err := fs.CP(ctx); err != nil {
		return nil, err
	}

	refs := make(map[BlockNo]string) // block → first referrer
	ref := func(b BlockNo, who string) {
		if b == 0 {
			return
		}
		if int(b) >= int(fs.info.NBlocks) {
			addf("%s references out-of-range block %d", who, b)
			return
		}
		if prev, ok := refs[b]; ok {
			addf("block %d referenced by both %s and %s", b, prev, who)
			return
		}
		refs[b] = who
		if fs.bmap.words[b]&ActiveBit == 0 {
			addf("%s references block %d which is not active in the map", who, b)
		}
	}
	// The reserved head of the volume holds the two fsinfo copies;
	// they cannot go through ref() because BlockNo 0 doubles as the
	// hole sentinel in block trees.
	for b := BlockNo(0); b < fsinfoReserved; b++ {
		refs[b] = "fsinfo"
	}

	refTree := func(ino *Inode, who string) {
		fs.treeBlocks(ctx, ino,
			func(fbn uint32, pbn BlockNo) { ref(pbn, fmt.Sprintf("%s data fbn %d", who, fbn)) },
			func(pbn BlockNo) { ref(pbn, who+" ptr") })
	}
	refTree(&fs.info.InodeFile, "inode file")
	refTree(&fs.info.BlkmapFile, "block-map file")

	// Walk all inodes; verify trees and gather link counts.
	nlinks := make(map[Inum]uint32) // expected from directory scan
	var dirs []Inum
	allocated := make(map[Inum]Inode)
	for i := RootIno; i < fs.nextIno; i++ {
		ino, err := fs.readInodeRaw(ctx, i)
		if err != nil {
			return nil, err
		}
		if !ino.Allocated() {
			continue
		}
		allocated[i] = ino
		who := fmt.Sprintf("inode %d", i)
		refTree(&ino, who)
		// Size sanity: no mapped block at or past the size bound.
		maxBlocks := ino.Blocks()
		fs.treeBlocks(ctx, &ino, func(fbn uint32, pbn BlockNo) {
			if fbn >= maxBlocks {
				addf("%s maps fbn %d beyond its size %d", who, fbn, ino.Size)
			}
		}, nil)
		if IsDir(ino.Mode) {
			dirs = append(dirs, i)
		}
	}

	// Directory structure and reachability.
	view := fs.ActiveView()
	reachable := map[Inum]bool{RootIno: true}
	for _, dir := range dirs {
		ents, err := view.Readdir(ctx, dir)
		if err != nil {
			addf("readdir of inode %d failed: %v", dir, err)
			continue
		}
		sawDot, sawDotDot := false, false
		for _, e := range ents {
			target, ok := allocated[e.Ino]
			if !ok {
				addf("dir %d entry %q points at unallocated inode %d", dir, e.Name, e.Ino)
				continue
			}
			switch e.Name {
			case ".":
				sawDot = true
				if e.Ino != dir {
					addf("dir %d has '.' pointing at %d", dir, e.Ino)
				}
			case "..":
				sawDotDot = true
				nlinks[e.Ino]++ // counts toward the parent
			default:
				nlinks[e.Ino]++
				reachable[e.Ino] = true
				if IsDir(target.Mode) {
					// dirs also get "." self-link
				}
			}
		}
		if !sawDot || !sawDotDot {
			addf("dir %d missing '.' or '..'", dir)
		}
		nlinks[dir]++ // its own "."
	}
	// Note the root needs no special credit: it has no name entry in
	// any parent, but its own ".." points at itself and supplies the
	// equivalent link.

	for i, ino := range allocated {
		if !reachable[i] && i != RootIno {
			addf("inode %d (%s) not reachable from root", i, ino.String())
		}
		if want := nlinks[i]; want != ino.Nlink {
			addf("inode %d has nlink %d, directory scan says %d", i, ino.Nlink, want)
		}
	}

	// Every active block must be referenced.
	for b := BlockNo(0); int(b) < int(fs.info.NBlocks); b++ {
		if fs.bmap.words[b]&ActiveBit != 0 {
			if _, ok := refs[b]; !ok {
				addf("block %d is active in the map but referenced by nothing", b)
			}
		}
	}
	return problems, nil
}

// MustCheck runs Check and returns an error listing any problems;
// convenient in integration code.
func (fs *FS) MustCheck(ctx context.Context) error {
	problems, err := fs.Check(ctx)
	if err != nil {
		return err
	}
	if len(problems) > 0 {
		return fmt.Errorf("%w: %d problems, first: %s", ErrCorrupt, len(problems), problems[0])
	}
	return nil
}
