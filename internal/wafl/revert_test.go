package wafl

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/storage"
)

func TestRevertToSnapshotRestoresTree(t *testing.T) {
	fs := newFS(t, 2048)
	golden := randBytes(91, 10*BlockSize)
	fs.WriteFile(ctx, "/keep/golden.bin", golden, 0644)
	fs.WriteFile(ctx, "/keep/other.txt", []byte("also here"), 0600)
	if err := fs.CreateSnapshot(ctx, "good"); err != nil {
		t.Fatal(err)
	}

	// Wreck the active filesystem.
	fs.WriteFile(ctx, "/keep/golden.bin", []byte("overwritten!"), 0644)
	fs.RemovePath(ctx, "/keep/other.txt")
	fs.WriteFile(ctx, "/junk/noise.dat", randBytes(92, 30*BlockSize), 0644)
	fs.CP(ctx)

	if err := fs.RevertToSnapshot(ctx, "good"); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ActiveView().ReadFile(ctx, "/keep/golden.bin")
	if err != nil || !bytes.Equal(got, golden) {
		t.Fatalf("golden not reverted: %v", err)
	}
	if _, err := fs.ActiveView().ReadFile(ctx, "/keep/other.txt"); err != nil {
		t.Fatalf("deleted file not resurrected: %v", err)
	}
	if _, err := fs.ActiveView().ReadFile(ctx, "/junk/noise.dat"); !errors.Is(err, ErrNotFound) {
		t.Fatal("post-snapshot junk survived the revert")
	}
	check(t, fs)
}

func TestRevertDeletesNewerKeepsOlder(t *testing.T) {
	fs := newFS(t, 2048)
	fs.WriteFile(ctx, "/era1.txt", []byte("one"), 0644)
	fs.CreateSnapshot(ctx, "older")
	fs.WriteFile(ctx, "/era2.txt", []byte("two"), 0644)
	fs.CreateSnapshot(ctx, "target")
	fs.WriteFile(ctx, "/era3.txt", []byte("three"), 0644)
	fs.CreateSnapshot(ctx, "newer")

	if err := fs.RevertToSnapshot(ctx, "target"); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, s := range fs.Snapshots() {
		names[s.Name] = true
	}
	if !names["older"] || !names["target"] || names["newer"] {
		t.Fatalf("snapshot set after revert: %v", names)
	}
	// The older snapshot still serves its era.
	sv, err := fs.SnapshotView("older")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sv.ReadFile(ctx, "/era1.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := sv.ReadFile(ctx, "/era2.txt"); !errors.Is(err, ErrNotFound) {
		t.Fatal("older snapshot sees era2")
	}
	check(t, fs)
}

func TestRevertedSnapshotSurvivesNewChurn(t *testing.T) {
	fs := newFS(t, 4096)
	payload := randBytes(93, 40*BlockSize)
	fs.WriteFile(ctx, "/payload.bin", payload, 0644)
	fs.CreateSnapshot(ctx, "base")
	fs.WriteFile(ctx, "/scratch.bin", randBytes(94, 40*BlockSize), 0644)
	if err := fs.RevertToSnapshot(ctx, "base"); err != nil {
		t.Fatal(err)
	}
	// Diverge hard again: the snapshot's blocks must stay protected.
	for i := 0; i < 10; i++ {
		fs.WriteFile(ctx, "/churn.bin", randBytes(int64(95+i), 50*BlockSize), 0644)
		fs.CP(ctx)
	}
	sv, err := fs.SnapshotView("base")
	if err != nil {
		t.Fatal(err)
	}
	got, err := sv.ReadFile(ctx, "/payload.bin")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("snapshot damaged after revert+churn: %v", err)
	}
	// Revert again: double-revert works.
	if err := fs.RevertToSnapshot(ctx, "base"); err != nil {
		t.Fatal(err)
	}
	got, _ = fs.ActiveView().ReadFile(ctx, "/payload.bin")
	if !bytes.Equal(got, payload) {
		t.Fatal("second revert lost data")
	}
	check(t, fs)
}

func TestRevertSurvivesRemount(t *testing.T) {
	dev := storage.NewMemDevice(2048)
	fs, _ := Mkfs(ctx, dev, nil, Options{})
	fs.WriteFile(ctx, "/v1.txt", []byte("version 1"), 0644)
	fs.CreateSnapshot(ctx, "v1")
	fs.WriteFile(ctx, "/v2.txt", []byte("version 2"), 0644)
	if err := fs.RevertToSnapshot(ctx, "v1"); err != nil {
		t.Fatal(err)
	}
	fs2, err := Mount(ctx, dev, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs2.ActiveView().ReadFile(ctx, "/v1.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs2.ActiveView().ReadFile(ctx, "/v2.txt"); !errors.Is(err, ErrNotFound) {
		t.Fatal("revert did not persist across remount")
	}
	check(t, fs2)
}

func TestRevertUnknownSnapshot(t *testing.T) {
	fs := newFS(t, 512)
	if err := fs.RevertToSnapshot(ctx, "ghost"); !errors.Is(err, ErrSnapNotFound) {
		t.Fatalf("err = %v, want ErrSnapNotFound", err)
	}
}

func TestRevertThenWriteAllocatesCleanly(t *testing.T) {
	// After a revert, the allocator must not hand out blocks the
	// reverted state still references.
	fs := newFS(t, 1024)
	fs.WriteFile(ctx, "/a.bin", randBytes(96, 30*BlockSize), 0644)
	fs.CreateSnapshot(ctx, "s")
	fs.WriteFile(ctx, "/b.bin", randBytes(97, 30*BlockSize), 0644)
	if err := fs.RevertToSnapshot(ctx, "s"); err != nil {
		t.Fatal(err)
	}
	fs.WriteFile(ctx, "/c.bin", randBytes(98, 30*BlockSize), 0644)
	fs.CP(ctx)
	got, err := fs.ActiveView().ReadFile(ctx, "/a.bin")
	if err != nil || !bytes.Equal(got, randBytes(96, 30*BlockSize)) {
		t.Fatalf("pre-revert data clobbered by post-revert writes: %v", err)
	}
	check(t, fs)
}
