package wafl

import (
	"context"
	"time"

	"repro/internal/sim"
)

// Costs is the CPU cost model for filesystem code paths. The paper's
// Tables 3–5 show logical dump/restore consuming 3–5× the CPU of the
// physical path because every byte moves through filesystem code that
// interprets and creates metadata; these per-operation charges are how
// that shows up here. A nil CPU station disables accounting entirely.
type Costs struct {
	// CPU is the filer's CPU station; nil disables CPU accounting.
	CPU *sim.Station

	// Op is charged per metadata operation (lookup, create, readdir…).
	Op time.Duration
	// ReadBlock is charged per 4 KB moved through the file read path.
	ReadBlock time.Duration
	// WriteBlock is charged per 4 KB moved through the file write path.
	WriteBlock time.Duration
	// CopyBlock is an extra per-block charge modelling a user/kernel
	// boundary data copy. The kernel-integrated dump of the paper (§3)
	// runs with this at zero; ablation A3 turns it on.
	CopyBlock time.Duration
	// CPBlock is charged per block written during a consistency point
	// (allocation, tree update and checksum work).
	CPBlock time.Duration
}

// DefaultCosts returns the cost model calibrated against the paper's
// F630 (a 500 MHz Alpha 21164A), derived from the published stage
// utilizations: logical dump burned ~25% of the CPU at ~7.7 MB/s
// (≈130 µs per 4 KB through the read path) and logical restore ~40%
// at ~6.5 MB/s (≈240 µs per 4 KB through the write path).
func DefaultCosts() Costs {
	return Costs{
		Op:         25 * time.Microsecond,
		ReadBlock:  130 * time.Microsecond,
		WriteBlock: 240 * time.Microsecond,
		CPBlock:    20 * time.Microsecond,
	}
}

// charge bills d of CPU time to the process in ctx, if any.
func (c *Costs) charge(ctx context.Context, d time.Duration) {
	if c == nil || c.CPU == nil || d <= 0 {
		return
	}
	if p := sim.ProcFrom(ctx); p != nil {
		c.CPU.Sync(p, d)
	}
}
