package wafl

import (
	"context"
	"fmt"
)

// Snapshot operations (paper §2.1): creating a snapshot duplicates the
// root data structure and copies the active bit plane into the
// snapshot's plane; WAFL does this "in just a few seconds" because
// nothing else is copied. Deleting one clears the plane. Up to
// MaxSnapshots snapshots exist at a time.

// CreateSnapshot takes a named snapshot of the active filesystem. It
// commits a consistency point first (the snapshot captures exactly
// that state) and a second one to persist the new snapshot table.
func (fs *FS) CreateSnapshot(ctx context.Context, name string) error {
	defer fs.lock(ctx)()
	if name == "" || len(name) > 32 {
		return fmt.Errorf("wafl: bad snapshot name %q", name)
	}
	slot := -1
	for i := range fs.info.Snaps {
		s := &fs.info.Snaps[i]
		if s.ID != 0 && s.Name == name {
			return fmt.Errorf("%w: %q", ErrSnapExists, name)
		}
		if s.ID == 0 && slot < 0 {
			slot = i
		}
	}
	if slot < 0 {
		return ErrSnapLimit
	}
	// Freeze the current state on disk.
	if err := fs.CP(ctx); err != nil {
		return err
	}
	id := fs.freeSnapID()
	if id == 0 {
		return ErrSnapLimit
	}
	fs.info.Snaps[slot] = SnapEntry{
		ID:        uint32(id),
		CreatedAt: fs.Clock(),
		Gen:       fs.info.Gen,
		Name:      name,
		Root:      fs.info.InodeFile,
		Blkmap:    fs.info.BlkmapFile,
	}
	fs.bmap.copyPlane(ActiveBit, SnapBit(id))
	// Persist the plane copy and the new snapshot table.
	return fs.CP(ctx)
}

// freeSnapID returns an unused snapshot id in 1..MaxSnapshots, or 0.
func (fs *FS) freeSnapID() int {
	used := make(map[uint32]bool)
	for i := range fs.info.Snaps {
		if fs.info.Snaps[i].ID != 0 {
			used[fs.info.Snaps[i].ID] = true
		}
	}
	for id := 1; id <= MaxSnapshots; id++ {
		if !used[uint32(id)] {
			return id
		}
	}
	return 0
}

// DeleteSnapshot removes the named snapshot, releasing any blocks held
// only by it (they become free once no other plane references them).
func (fs *FS) DeleteSnapshot(ctx context.Context, name string) error {
	defer fs.lock(ctx)()
	for i := range fs.info.Snaps {
		s := &fs.info.Snaps[i]
		if s.ID != 0 && s.Name == name {
			fs.bmap.clearPlane(SnapBit(int(s.ID)))
			fs.info.Snaps[i] = SnapEntry{}
			return fs.CP(ctx)
		}
	}
	return fmt.Errorf("%w: %q", ErrSnapNotFound, name)
}

// Snapshots lists the existing snapshots in creation order.
func (fs *FS) Snapshots() []SnapEntry {
	var out []SnapEntry
	for i := range fs.info.Snaps {
		if fs.info.Snaps[i].ID != 0 {
			out = append(out, fs.info.Snaps[i])
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].CreatedAt < out[j-1].CreatedAt; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Snapshot returns the snapshot entry named name.
func (fs *FS) Snapshot(name string) (SnapEntry, error) {
	for i := range fs.info.Snaps {
		if fs.info.Snaps[i].ID != 0 && fs.info.Snaps[i].Name == name {
			return fs.info.Snaps[i], nil
		}
	}
	return SnapEntry{}, fmt.Errorf("%w: %q", ErrSnapNotFound, name)
}

// SnapshotView returns a read-only view of the named snapshot.
func (fs *FS) SnapshotView(name string) (*View, error) {
	for i := range fs.info.Snaps {
		if fs.info.Snaps[i].ID != 0 && fs.info.Snaps[i].Name == name {
			return &View{fs: fs, snap: &fs.info.Snaps[i]}, nil
		}
	}
	return nil, fmt.Errorf("%w: %q", ErrSnapNotFound, name)
}

// RevertToSnapshot rewinds the active filesystem to the named
// snapshot — recovery from a snapshot without touching tape, the
// in-place complement of the backup strategies (WAFL later shipped
// this as SnapRestore). The snapshot's frozen root and block map
// become the active ones.
//
// Snapshots newer than the target reference state that no longer
// exists after the revert; they are deleted, exactly as the real
// feature does. Older snapshots survive: their bit planes are part of
// the target's frozen map.
func (fs *FS) RevertToSnapshot(ctx context.Context, name string) error {
	defer fs.lock(ctx)()
	target, err := fs.Snapshot(name)
	if err != nil {
		return err
	}
	// Quiesce: anything staged is about to be discarded, but the
	// on-disk state must be self-consistent before surgery.
	if err := fs.CP(ctx); err != nil {
		return err
	}
	// Load the snapshot's frozen block map; it carries the planes of
	// every snapshot older than the target.
	words, err := fs.SnapshotBlockMapWords(ctx, name)
	if err != nil {
		return err
	}
	// Drop newer snapshots from the table (their planes are not in
	// the frozen map, so they could not be kept consistent).
	for i := range fs.info.Snaps {
		s := &fs.info.Snaps[i]
		if s.ID != 0 && s.Gen > target.Gen {
			*s = SnapEntry{}
		}
	}
	copy(fs.bmap.words, words)
	// The target's own plane was not yet set when its map was frozen;
	// re-mark it so the snapshot remains protected (and re-revertable)
	// as the active filesystem diverges again.
	fs.bmap.copyPlane(ActiveBit, SnapBit(int(target.ID)))
	fs.bmap.refreeze()

	// Install the frozen roots and rebuild in-memory state.
	fs.info.InodeFile = target.Root
	fs.info.BlkmapFile = target.Blkmap
	fs.info.NInodes = target.Root.Size / InodeSize
	fs.states = make(map[Inum]*istate)
	fs.inofSt = &istate{dirty: make(map[uint32][]byte)}
	fs.inofSt.ino = target.Root
	fs.cache = newBlockCache(fs.opts.CacheBlocks)
	fs.lastRead = make(map[Inum]uint32)
	fs.stagedBlocks = 0
	fs.nextIno = Inum(fs.info.NInodes)
	if fs.nextIno < RootIno+1 {
		fs.nextIno = RootIno + 1
	}
	fs.freeInos = nil
	for i := RootIno + 1; i < fs.nextIno; i++ {
		ino, err := fs.readInodeRaw(ctx, i)
		if err != nil {
			return err
		}
		if !ino.Allocated() {
			fs.addFreeIno(i)
		}
	}
	if fs.log != nil {
		fs.log.Reset()
	}
	// Commit the reverted root.
	return fs.CP(ctx)
}

// SnapshotBlockMapWords reads the named snapshot's frozen block map —
// the one captured at its creation — from disk. Its active bit (bit 0)
// marks exactly the snapshot's world, including the worlds of all
// snapshots that existed when it was taken. Image dump's block
// selection is built entirely from these words; this is the only
// filesystem involvement in a physical dump (paper §4.1: "image dump
// uses the file system only to access the block map information").
func (fs *FS) SnapshotBlockMapWords(ctx context.Context, name string) ([]uint32, error) {
	s, err := fs.Snapshot(name)
	if err != nil {
		return nil, err
	}
	nWords := int(fs.info.NBlocks)
	words := make([]uint32, nWords)
	nBlks := (nWords + PtrsPerBlock - 1) / PtrsPerBlock
	for fbn := 0; fbn < nBlks; fbn++ {
		pbn, err := fs.walkTree(ctx, &s.Blkmap, uint32(fbn))
		if err != nil {
			return nil, err
		}
		if pbn == 0 {
			return nil, fmt.Errorf("%w: hole in snapshot %q block map at fbn %d", ErrCorrupt, name, fbn)
		}
		data, err := fs.readBlock(ctx, pbn)
		if err != nil {
			return nil, err
		}
		for i := 0; i < PtrsPerBlock && fbn*PtrsPerBlock+i < nWords; i++ {
			words[fbn*PtrsPerBlock+i] = leU32(data[4*i:])
		}
	}
	return words, nil
}

// SnapshotsBefore returns the snapshots older than the named one, in
// creation order — the set an image restore of that snapshot carries
// along.
func (fs *FS) SnapshotsBefore(name string) ([]SnapEntry, error) {
	target, err := fs.Snapshot(name)
	if err != nil {
		return nil, err
	}
	var out []SnapEntry
	for _, s := range fs.Snapshots() {
		if s.Gen < target.Gen && s.Name != name {
			out = append(out, s)
		}
	}
	return out, nil
}

// SnapshotBlocks returns how many blocks belong to the named snapshot's
// bit plane (the paper's per-snapshot space accounting).
func (fs *FS) SnapshotBlocks(name string) (int, error) {
	s, err := fs.Snapshot(name)
	if err != nil {
		return 0, err
	}
	return fs.bmap.countPlane(SnapBit(int(s.ID))), nil
}
