package wafl

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/storage"
)

func TestNameValidation(t *testing.T) {
	fs := newFS(t, 512)
	for _, name := range []string{"", ".", "..", "has/slash"} {
		if _, err := fs.Create(ctx, RootIno, name, 0644, 0, 0); err == nil {
			t.Errorf("Create(%q) accepted", name)
		}
		if _, err := fs.Mkdir(ctx, RootIno, name, 0755, 0, 0); err == nil {
			t.Errorf("Mkdir(%q) accepted", name)
		}
	}
	long := strings.Repeat("x", MaxNameLen+1)
	if _, err := fs.Create(ctx, RootIno, long, 0644, 0, 0); !errors.Is(err, ErrNameTooLong) {
		t.Errorf("overlong name err = %v", err)
	}
	// Exactly MaxNameLen is fine.
	edge := strings.Repeat("y", MaxNameLen)
	if _, err := fs.Create(ctx, RootIno, edge, 0644, 0, 0); err != nil {
		t.Errorf("max-length name rejected: %v", err)
	}
	check(t, fs)
}

func TestSymlinkLoopDetected(t *testing.T) {
	fs := newFS(t, 512)
	if _, err := fs.Symlink(ctx, RootIno, "a", "/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Symlink(ctx, RootIno, "b", "/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ActiveView().ReadFile(ctx, "/a/whatever"); !errors.Is(err, ErrSymlinkLoop) {
		t.Fatalf("err = %v, want ErrSymlinkLoop", err)
	}
}

func TestRelativeSymlinkResolvesFromItsDirectory(t *testing.T) {
	fs := newFS(t, 512)
	fs.WriteFile(ctx, "/dir/target/data.txt", []byte("found it"), 0644)
	dirIno, _ := fs.ActiveView().Namei(ctx, "/dir")
	if _, err := fs.Symlink(ctx, dirIno, "ln", "target"); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ActiveView().ReadFile(ctx, "/dir/ln/data.txt")
	if err != nil || string(got) != "found it" {
		t.Fatalf("relative symlink: %q, %v", got, err)
	}
}

func TestDeeplyNestedTree(t *testing.T) {
	fs := newFS(t, 2048)
	path := ""
	for i := 0; i < 40; i++ {
		path += fmt.Sprintf("/level%02d", i)
	}
	if _, err := fs.WriteFile(ctx, path+"/leaf.txt", []byte("deep"), 0644); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ActiveView().ReadFile(ctx, path+"/leaf.txt")
	if err != nil || string(got) != "deep" {
		t.Fatalf("deep read: %v", err)
	}
	check(t, fs)
}

func TestWriteAtArbitraryOffsets(t *testing.T) {
	fs := newFS(t, 1024)
	ino, _ := fs.Create(ctx, RootIno, "f", 0644, 0, 0)
	// Unaligned overlapping writes.
	fs.Write(ctx, ino, 100, bytes.Repeat([]byte{1}, 5000))
	fs.Write(ctx, ino, 3000, bytes.Repeat([]byte{2}, 100))
	fs.Write(ctx, ino, 0, []byte{9})
	got, _ := fs.ActiveView().ReadFile(ctx, "/f")
	if len(got) != 5100 {
		t.Fatalf("size %d, want 5100", len(got))
	}
	if got[0] != 9 || got[99] != 0 || got[100] != 1 || got[2999] != 1 || got[3000] != 2 || got[3099] != 2 || got[3100] != 1 {
		t.Fatal("overlapping writes merged wrong")
	}
	check(t, fs)
}

func TestReadAtEOFSemantics(t *testing.T) {
	fs := newFS(t, 512)
	ino, _ := fs.WriteFile(ctx, "/f", []byte("12345"), 0644)
	buf := make([]byte, 10)
	n, err := fs.ActiveView().ReadAt(ctx, ino, 0, buf)
	if err != nil || n != 5 {
		t.Fatalf("short read: n=%d err=%v", n, err)
	}
	n, err = fs.ActiveView().ReadAt(ctx, ino, 100, buf)
	if err != nil || n != 0 {
		t.Fatalf("read past EOF: n=%d err=%v", n, err)
	}
}

func TestReadAtDirectoryRejected(t *testing.T) {
	fs := newFS(t, 512)
	buf := make([]byte, 8)
	if _, err := fs.ActiveView().ReadAt(ctx, RootIno, 0, buf); !errors.Is(err, ErrIsDir) {
		t.Fatalf("err = %v, want ErrIsDir", err)
	}
	if _, err := fs.ActiveView().ReadFile(ctx, "/"); !errors.Is(err, ErrIsDir) {
		t.Fatalf("ReadFile(/) err = %v, want ErrIsDir", err)
	}
}

func TestQtreeFlag(t *testing.T) {
	fs := newFS(t, 512)
	ino, _ := fs.Mkdir(ctx, RootIno, "q1", 0755, 0, 0)
	if err := fs.SetQtreeRoot(ctx, ino, 7); err != nil {
		t.Fatal(err)
	}
	st, _ := fs.GetInode(ctx, ino)
	if st.Flags&FlagQtreeRoot == 0 || st.QtreeID != 7 {
		t.Fatalf("qtree attrs = %+v", st)
	}
	// Survives a remount.
	fs.CP(ctx)
	check(t, fs)
}

func TestXModeRoundTripsThroughEverything(t *testing.T) {
	// The paper (§3): NetApp's dump extends the format to carry DOS
	// bits and NT ACLs "created on our multi-protocol file system".
	// XMode is that opaque extension; it must survive CP + remount.
	dev := storage.NewMemDevice(512)
	fs, _ := Mkfs(ctx, dev, nil, Options{})
	ino, _ := fs.Create(ctx, RootIno, "w.doc", 0644, 0, 0)
	xm := uint32(0xC0FFEE)
	fs.SetAttr(ctx, ino, Attr{XMode: &xm})
	fs.CP(ctx)
	fs2, err := Mount(ctx, dev, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, _ := fs2.GetInode(ctx, ino)
	if st.XMode != 0xC0FFEE {
		t.Fatalf("XMode = %#x", st.XMode)
	}
}

func TestLinkToDirectoryRejected(t *testing.T) {
	fs := newFS(t, 512)
	dir, _ := fs.Mkdir(ctx, RootIno, "d", 0755, 0, 0)
	if err := fs.Link(ctx, dir, RootIno, "hard-to-dir"); !errors.Is(err, ErrIsDir) {
		t.Fatalf("err = %v, want ErrIsDir", err)
	}
}

func TestRenameOntoExistingFileReplaces(t *testing.T) {
	fs := newFS(t, 512)
	fs.WriteFile(ctx, "/old", []byte("mover"), 0644)
	fs.WriteFile(ctx, "/victim", []byte("replaced"), 0644)
	if err := fs.Rename(ctx, RootIno, "old", RootIno, "victim"); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ActiveView().ReadFile(ctx, "/victim")
	if err != nil || string(got) != "mover" {
		t.Fatalf("victim = %q, %v", got, err)
	}
	if _, err := fs.ActiveView().ReadFile(ctx, "/old"); !errors.Is(err, ErrNotFound) {
		t.Fatal("source still present")
	}
	check(t, fs)
}

func TestRenameOntoDirectoryRejected(t *testing.T) {
	fs := newFS(t, 512)
	fs.WriteFile(ctx, "/f", []byte("x"), 0644)
	fs.Mkdir(ctx, RootIno, "d", 0755, 0, 0)
	if err := fs.Rename(ctx, RootIno, "f", RootIno, "d"); !errors.Is(err, ErrIsDir) {
		t.Fatalf("err = %v, want ErrIsDir", err)
	}
}

func TestRenameNoopOntoItself(t *testing.T) {
	fs := newFS(t, 512)
	fs.WriteFile(ctx, "/f", []byte("same"), 0644)
	fIno, _ := fs.ActiveView().Namei(ctx, "/f")
	// Renaming onto another name for the same inode is a no-op.
	fs.Link(ctx, fIno, RootIno, "g")
	if err := fs.Rename(ctx, RootIno, "f", RootIno, "g"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ActiveView().ReadFile(ctx, "/f"); err != nil {
		t.Fatalf("noop rename destroyed source: %v", err)
	}
	check(t, fs)
}

func TestSnapshotViewIsReadOnlySurface(t *testing.T) {
	fs := newFS(t, 512)
	fs.WriteFile(ctx, "/f", []byte("frozen"), 0644)
	fs.CreateSnapshot(ctx, "s")
	sv, _ := fs.SnapshotView("s")
	if !sv.IsSnapshot() || sv.SnapshotName() != "s" {
		t.Fatal("snapshot view identity wrong")
	}
	if fs.ActiveView().IsSnapshot() {
		t.Fatal("active view claims to be a snapshot")
	}
	// Reading a never-existing inode through the snapshot errors.
	if _, err := sv.GetInode(ctx, Inum(5000)); err == nil {
		t.Fatal("snapshot GetInode(5000) succeeded")
	}
}

func TestCacheEffectiveness(t *testing.T) {
	fs := newFS(t, 1024)
	data := randBytes(81, 20*BlockSize)
	ino, _ := fs.WriteFile(ctx, "/f", data, 0644)
	fs.CP(ctx)
	buf := make([]byte, len(data))
	fs.ActiveView().ReadAt(ctx, ino, 0, buf)
	h1, _ := fs.CacheStats()
	fs.ActiveView().ReadAt(ctx, ino, 0, buf)
	h2, _ := fs.CacheStats()
	if h2 <= h1 {
		t.Fatalf("second read produced no cache hits (%d -> %d)", h1, h2)
	}
}

func TestMountRejectsWrongSizeDevice(t *testing.T) {
	dev := storage.NewMemDevice(512)
	fs, _ := Mkfs(ctx, dev, nil, Options{})
	fs.CP(ctx)
	// Clone onto a bigger device: mount must refuse (physical
	// non-portability, paper §4).
	big := storage.NewMemDevice(1024)
	buf := make([]byte, BlockSize)
	for b := 0; b < 512; b++ {
		dev.ReadBlock(ctx, b, buf)
		big.WriteBlock(ctx, b, buf)
	}
	if _, err := Mount(ctx, big, nil, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mount on larger device err = %v, want ErrCorrupt", err)
	}
}

func TestMkfsTooSmall(t *testing.T) {
	if _, err := Mkfs(ctx, storage.NewMemDevice(8), nil, Options{}); err == nil {
		t.Fatal("8-block volume formatted")
	}
}

func TestManySmallFilesAcrossManyCPs(t *testing.T) {
	fs := newFS(t, 4096)
	for batch := 0; batch < 10; batch++ {
		for i := 0; i < 30; i++ {
			p := fmt.Sprintf("/b%d/f%d", batch, i)
			if _, err := fs.WriteFile(ctx, p, randBytes(int64(batch*100+i), 2048), 0644); err != nil {
				t.Fatal(err)
			}
		}
		if err := fs.CP(ctx); err != nil {
			t.Fatal(err)
		}
	}
	check(t, fs)
	// Everything still readable.
	for batch := 0; batch < 10; batch++ {
		for i := 0; i < 30; i++ {
			p := fmt.Sprintf("/b%d/f%d", batch, i)
			got, err := fs.ActiveView().ReadFile(ctx, p)
			if err != nil || !bytes.Equal(got, randBytes(int64(batch*100+i), 2048)) {
				t.Fatalf("%s corrupted: %v", p, err)
			}
		}
	}
}
