package wafl

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// fsinfo is the root structure the paper describes: "one inode (in
// WAFL's case the inode describing the inode file) must be written in
// a fixed location in order to enable the system to find everything
// else. Naturally, this inode is written redundantly." Here the root
// structure — the inode-file and block-map-file inodes plus the
// snapshot table — spans fsinfoSpan blocks and is written redundantly
// at two fixed locations (blocks 0–1 and 2–3).
type fsinfo struct {
	Gen        uint64 // consistency-point generation
	CPTime     int64  // virtual time of the last CP
	NBlocks    uint64
	NInodes    uint64 // inode-file capacity in inodes
	InodeFile  Inode  // root of the inode file
	BlkmapFile Inode  // root of the block-map file
	Snaps      [MaxSnapshots]SnapEntry
}

// SnapEntry is one slot of the snapshot table. A zero ID means the
// slot is free. The entry stores a complete copy of the root data
// structure frozen when the snapshot was created — both the inode-file
// inode and the block-map-file inode, plus the CP generation. The
// saved block map is what makes an image dump of the snapshot
// self-describing: its active plane is exactly the snapshot's world,
// including the worlds of all older snapshots (paper §4.1).
type SnapEntry struct {
	ID        uint32 // 1..MaxSnapshots; 0 = free slot
	CreatedAt int64  // unix nanoseconds (virtual clock when simulated)
	Gen       uint64 // CP generation the snapshot froze
	Name      string // up to 32 bytes
	Root      Inode  // the inode-file inode frozen at creation
	Blkmap    Inode  // the block-map-file inode frozen at creation
}

const (
	fsinfoMagic   = "WAFLSIM2"
	fsinfoVersion = 2
	snapEntrySize = 4 + 8 + 8 + 32 + 2*InodeSize // 308

	// fsinfoSpan is how many blocks one fsinfo copy occupies.
	fsinfoSpan = 2
	// fsinfoReserved is the number of fixed blocks at the head of the
	// volume (two redundant fsinfo copies).
	fsinfoReserved = 2 * fsinfoSpan
)

// marshalFsinfo encodes info into fsinfoSpan blocks with a trailing
// CRC so mount can pick the healthy copy of the two.
func marshalFsinfo(info *fsinfo) []byte {
	buf := make([]byte, fsinfoSpan*BlockSize)
	copy(buf[0:8], fsinfoMagic)
	le := binary.LittleEndian
	le.PutUint32(buf[8:], fsinfoVersion)
	le.PutUint64(buf[12:], info.Gen)
	le.PutUint64(buf[20:], uint64(info.CPTime))
	le.PutUint64(buf[28:], info.NBlocks)
	le.PutUint64(buf[36:], info.NInodes)
	info.InodeFile.Marshal(buf[44:])
	info.BlkmapFile.Marshal(buf[44+InodeSize:])
	off := 44 + 2*InodeSize
	for i := range info.Snaps {
		s := &info.Snaps[i]
		le.PutUint32(buf[off:], s.ID)
		le.PutUint64(buf[off+4:], uint64(s.CreatedAt))
		le.PutUint64(buf[off+12:], s.Gen)
		name := s.Name
		if len(name) > 32 {
			name = name[:32]
		}
		copy(buf[off+20:off+52], name)
		s.Root.Marshal(buf[off+52:])
		s.Blkmap.Marshal(buf[off+52+InodeSize:])
		off += snapEntrySize
	}
	crc := crc32.ChecksumIEEE(buf[:len(buf)-4])
	le.PutUint32(buf[len(buf)-4:], crc)
	return buf
}

// unmarshalFsinfo decodes and validates a root-structure image.
func unmarshalFsinfo(buf []byte) (*fsinfo, error) {
	if len(buf) != fsinfoSpan*BlockSize {
		return nil, fmt.Errorf("%w: fsinfo image length %d", ErrCorrupt, len(buf))
	}
	le := binary.LittleEndian
	if string(buf[0:8]) != fsinfoMagic {
		return nil, fmt.Errorf("%w: bad fsinfo magic", ErrCorrupt)
	}
	if got := crc32.ChecksumIEEE(buf[:len(buf)-4]); got != le.Uint32(buf[len(buf)-4:]) {
		return nil, fmt.Errorf("%w: fsinfo checksum mismatch", ErrCorrupt)
	}
	if v := le.Uint32(buf[8:]); v != fsinfoVersion {
		return nil, fmt.Errorf("%w: fsinfo version %d", ErrCorrupt, v)
	}
	info := &fsinfo{}
	info.Gen = le.Uint64(buf[12:])
	info.CPTime = int64(le.Uint64(buf[20:]))
	info.NBlocks = le.Uint64(buf[28:])
	info.NInodes = le.Uint64(buf[36:])
	info.InodeFile = UnmarshalInode(buf[44:])
	info.BlkmapFile = UnmarshalInode(buf[44+InodeSize:])
	off := 44 + 2*InodeSize
	for i := range info.Snaps {
		s := &info.Snaps[i]
		s.ID = le.Uint32(buf[off:])
		s.CreatedAt = int64(le.Uint64(buf[off+4:]))
		s.Gen = le.Uint64(buf[off+12:])
		name := buf[off+20 : off+52]
		n := 0
		for n < len(name) && name[n] != 0 {
			n++
		}
		s.Name = string(name[:n])
		s.Root = UnmarshalInode(buf[off+52:])
		s.Blkmap = UnmarshalInode(buf[off+52+InodeSize:])
		off += snapEntrySize
	}
	return info, nil
}

// ComposeRestoreRoot builds the fsinfo image an image restore writes:
// the live filesystem becomes the dumped snapshot's frozen state, and
// the snapshot table holds only snapshots older than it — "the system
// you restore looks just like the system you dumped, snapshots and
// all" (paper §4.1). The returned image is fsinfoSpan blocks long.
func ComposeRestoreRoot(nblocks uint64, snap SnapEntry, older []SnapEntry) ([]byte, error) {
	if len(older) > MaxSnapshots {
		return nil, fmt.Errorf("wafl: %d snapshots exceeds table", len(older))
	}
	info := &fsinfo{
		Gen:        snap.Gen,
		CPTime:     snap.CreatedAt,
		NBlocks:    nblocks,
		NInodes:    snap.Root.Size / InodeSize,
		InodeFile:  snap.Root,
		BlkmapFile: snap.Blkmap,
	}
	for i, s := range older {
		info.Snaps[i] = s
	}
	return marshalFsinfo(info), nil
}

// FsinfoSpan reports how many fixed blocks one root copy occupies, and
// FsinfoReserved the total fixed region; image restore writes the
// composed root across the reserved region.
const (
	FsinfoSpan     = fsinfoSpan
	FsinfoReserved = fsinfoReserved
)

// RootGeneration validates a raw root image and returns its CP
// generation. Image restore uses it to check an incremental against
// the target volume's current state without mounting.
func RootGeneration(image []byte) (uint64, error) {
	info, err := unmarshalFsinfo(image)
	if err != nil {
		return 0, err
	}
	return info.Gen, nil
}
