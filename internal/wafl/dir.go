package wafl

import (
	"context"
	"fmt"
	"sort"
	"strings"
)

// Directories are specially formatted files (paper §2): each 4 KB
// block holds a chain of variable-length records that exactly covers
// the block:
//
//	[ino uint32][reclen uint16][namelen uint8][ftype uint8][name ...pad4]
//
// A record with ino == 0 is free space. Records never cross block
// boundaries. This is the classic FFS shape, which is also what the
// paper's dump format describes ("directories are written in a simple,
// known format of the file name followed by the inode number").

const dirRecFixed = 8 // bytes before the name

// DirEnt is one directory entry as returned by Readdir.
type DirEnt struct {
	Name string
	Ino  Inum
	Type uint32 // ModeDir / ModeReg / ModeSymlink
}

// dirRecLen returns the space a record with an n-byte name occupies.
func dirRecLen(n int) int { return (dirRecFixed + n + 3) &^ 3 }

// initDirBlock formats blk as an empty directory block: one free
// record covering everything.
func initDirBlock(blk []byte) {
	for i := range blk {
		blk[i] = 0
	}
	putU32(blk[0:], 0)
	blk[4] = byte(BlockSize & 0xff)
	blk[5] = byte(BlockSize >> 8)
}

// dirForEach iterates the records of one directory block. The callback
// gets the record offset, its fields, and returns false to stop.
func dirForEach(blk []byte, fn func(off int, ino Inum, reclen int, ftype uint32, name string) bool) error {
	off := 0
	for off < BlockSize {
		if off+dirRecFixed > BlockSize {
			return fmt.Errorf("%w: truncated directory record at %d", ErrCorrupt, off)
		}
		ino := Inum(leU32(blk[off:]))
		reclen := int(blk[off+4]) | int(blk[off+5])<<8
		namelen := int(blk[off+6])
		ftype := uint32(blk[off+7]) << 12
		if reclen < dirRecFixed || off+reclen > BlockSize || dirRecLen(namelen) > reclen {
			return fmt.Errorf("%w: bad directory record at %d (reclen %d)", ErrCorrupt, off, reclen)
		}
		name := string(blk[off+dirRecFixed : off+dirRecFixed+namelen])
		if !fn(off, ino, reclen, ftype, name) {
			return nil
		}
		off += reclen
	}
	return nil
}

// dirInsertInBlock places (name → ino) in blk if space allows,
// coalescing adjacent free records as it scans. It returns ErrNoSpace
// when the block is full (the caller then tries the next block).
func dirInsertInBlock(blk []byte, name string, ino Inum, ftype uint32) error {
	need := dirRecLen(len(name))
	off := 0
	for off < BlockSize {
		recIno := Inum(leU32(blk[off:]))
		reclen := int(blk[off+4]) | int(blk[off+5])<<8
		if reclen < dirRecFixed || off+reclen > BlockSize {
			return fmt.Errorf("%w: bad directory record at %d", ErrCorrupt, off)
		}
		// Coalesce a following free record into this free record.
		if recIno == 0 {
			for off+reclen < BlockSize {
				nIno := Inum(leU32(blk[off+reclen:]))
				nLen := int(blk[off+reclen+4]) | int(blk[off+reclen+5])<<8
				if nIno != 0 || nLen < dirRecFixed || off+reclen+nLen > BlockSize {
					break
				}
				reclen += nLen
				blk[off+4] = byte(reclen)
				blk[off+5] = byte(reclen >> 8)
			}
		}
		var avail, keep int
		if recIno == 0 {
			avail, keep = reclen, 0
		} else {
			keep = dirRecLen(int(blk[off+6]))
			avail = reclen - keep
		}
		if avail >= need {
			// Shrink the current record to keep, write ours after it.
			if keep > 0 {
				blk[off+4] = byte(keep)
				blk[off+5] = byte(keep >> 8)
			}
			w := off + keep
			newLen := reclen - keep
			if keep == 0 {
				w = off
				newLen = reclen
			}
			putU32(blk[w:], uint32(ino))
			blk[w+4] = byte(newLen)
			blk[w+5] = byte(newLen >> 8)
			blk[w+6] = byte(len(name))
			blk[w+7] = byte(ftype >> 12)
			copy(blk[w+dirRecFixed:], name)
			return nil
		}
		off += reclen
	}
	return ErrNoSpace
}

// dirRemoveFromBlock deletes name from blk, returning the removed
// inode number, or (0, false) if absent.
func dirRemoveFromBlock(blk []byte, name string) (Inum, bool) {
	var removed Inum
	found := false
	dirForEach(blk, func(off int, ino Inum, reclen int, ftype uint32, n string) bool {
		if ino != 0 && n == name {
			removed = ino
			putU32(blk[off:], 0) // mark free; coalescing happens on insert
			blk[off+6] = 0
			found = true
			return false
		}
		return true
	})
	return removed, found
}

// lookupDir finds name in directory dir of view v.
func (v *View) lookupDir(ctx context.Context, dir Inum, name string) (Inum, uint32, error) {
	ino, err := v.GetInode(ctx, dir)
	if err != nil {
		return 0, 0, err
	}
	if !IsDir(ino.Mode) {
		return 0, 0, ErrNotDir
	}
	v.fs.costs.charge(ctx, v.fs.costs.Op)
	blocks := ino.Blocks()
	blk := make([]byte, BlockSize)
	for fbn := uint32(0); fbn < blocks; fbn++ {
		if _, err := v.readAt(ctx, dir, uint64(fbn)*BlockSize, blk); err != nil {
			return 0, 0, err
		}
		var got Inum
		var gotType uint32
		err := dirForEach(blk, func(off int, eIno Inum, reclen int, ftype uint32, n string) bool {
			if eIno != 0 && n == name {
				got, gotType = eIno, ftype
				return false
			}
			return true
		})
		if err != nil {
			return 0, 0, err
		}
		if got != 0 {
			return got, gotType, nil
		}
	}
	return 0, 0, fmt.Errorf("%w: %q", ErrNotFound, name)
}

// Readdir returns the entries of directory dir (excluding free
// records), sorted by name for deterministic iteration.
func (v *View) Readdir(ctx context.Context, dir Inum) ([]DirEnt, error) {
	ino, err := v.GetInode(ctx, dir)
	if err != nil {
		return nil, err
	}
	if !IsDir(ino.Mode) {
		return nil, ErrNotDir
	}
	v.fs.costs.charge(ctx, v.fs.costs.Op)
	var ents []DirEnt
	blocks := ino.Blocks()
	blk := make([]byte, BlockSize)
	for fbn := uint32(0); fbn < blocks; fbn++ {
		if _, err := v.readAt(ctx, dir, uint64(fbn)*BlockSize, blk); err != nil {
			return nil, err
		}
		err := dirForEach(blk, func(off int, eIno Inum, reclen int, ftype uint32, n string) bool {
			if eIno != 0 {
				ents = append(ents, DirEnt{Name: n, Ino: eIno, Type: ftype})
			}
			return true
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].Name < ents[j].Name })
	return ents, nil
}

// dirInsert adds (name → ino) to the active directory dir, growing the
// directory by one block if every existing block is full.
func (fs *FS) dirInsert(ctx context.Context, dir Inum, name string, ino Inum, ftype uint32) error {
	if len(name) > MaxNameLen {
		return ErrNameTooLong
	}
	st, err := fs.state(ctx, dir)
	if err != nil {
		return err
	}
	blocks := st.ino.Blocks()
	blk := make([]byte, BlockSize)
	for fbn := uint32(0); fbn < blocks; fbn++ {
		if _, err := fs.readAt(ctx, dir, uint64(fbn)*BlockSize, blk); err != nil {
			return err
		}
		if err := dirInsertInBlock(blk, name, ino, ftype); err == nil {
			return fs.writeAt(ctx, dir, uint64(fbn)*BlockSize, blk)
		} else if err != ErrNoSpace {
			return err
		}
	}
	initDirBlock(blk)
	if err := dirInsertInBlock(blk, name, ino, ftype); err != nil {
		return err
	}
	return fs.writeAt(ctx, dir, uint64(blocks)*BlockSize, blk)
}

// dirRemove deletes name from the active directory dir and returns the
// inode it referenced.
func (fs *FS) dirRemove(ctx context.Context, dir Inum, name string) (Inum, error) {
	st, err := fs.state(ctx, dir)
	if err != nil {
		return 0, err
	}
	blocks := st.ino.Blocks()
	blk := make([]byte, BlockSize)
	for fbn := uint32(0); fbn < blocks; fbn++ {
		if _, err := fs.readAt(ctx, dir, uint64(fbn)*BlockSize, blk); err != nil {
			return 0, err
		}
		if ino, ok := dirRemoveFromBlock(blk, name); ok {
			if err := fs.writeAt(ctx, dir, uint64(fbn)*BlockSize, blk); err != nil {
				return 0, err
			}
			return ino, nil
		}
	}
	return 0, fmt.Errorf("%w: %q", ErrNotFound, name)
}

// dirIsEmpty reports whether dir contains only "." and "..".
func (v *View) dirIsEmpty(ctx context.Context, dir Inum) (bool, error) {
	ents, err := v.Readdir(ctx, dir)
	if err != nil {
		return false, err
	}
	for _, e := range ents {
		if e.Name != "." && e.Name != ".." {
			return false, nil
		}
	}
	return true, nil
}

// SplitPath cleans and splits a slash-separated path into components,
// with "" and "/" yielding none.
func SplitPath(path string) []string {
	var out []string
	for _, c := range strings.Split(path, "/") {
		switch c {
		case "", ".":
		default:
			out = append(out, c)
		}
	}
	return out
}

// Namei resolves path (relative to the root) to an inode number,
// following intermediate symlinks up to a fixed depth. A symlink as
// the final component is returned itself (lstat-like), so callers can
// Readlink it.
func (v *View) Namei(ctx context.Context, path string) (Inum, error) {
	return v.nameiFrom(ctx, RootIno, path, 0, false)
}

// nameiFrom walks comps from dir. followLast applies when the walk is
// itself resolving an intermediate symlink's target: then even the
// target's final component must be followed, or a chain of symlinks
// through directories would stop one hop short.
func (v *View) nameiFrom(ctx context.Context, dir Inum, path string, depth int, followLast bool) (Inum, error) {
	if depth > 8 {
		return 0, ErrSymlinkLoop
	}
	cur := dir
	comps := SplitPath(path)
	for i, c := range comps {
		next, _, err := v.lookupDir(ctx, cur, c)
		if err != nil {
			return 0, fmt.Errorf("%s: %w", strings.Join(comps[:i+1], "/"), err)
		}
		ino, err := v.GetInode(ctx, next)
		if err != nil {
			return 0, err
		}
		if IsSymlink(ino.Mode) && (i < len(comps)-1 || followLast) {
			target, err := v.Readlink(ctx, next)
			if err != nil {
				return 0, err
			}
			base := cur
			if strings.HasPrefix(target, "/") {
				base = RootIno
			}
			resolved, err := v.nameiFrom(ctx, base, target, depth+1, true)
			if err != nil {
				return 0, err
			}
			next = resolved
		}
		cur = next
	}
	return cur, nil
}

// Lookup finds name in directory dir.
func (v *View) Lookup(ctx context.Context, dir Inum, name string) (Inum, error) {
	ino, _, err := v.lookupDir(ctx, dir, name)
	return ino, err
}
