package wafl

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
)

// NVRAM log records. Each mutating operation is serialized (including
// the inode number it was assigned, so replay can verify determinism)
// and appended to the NVRAM log before the operation returns. After a
// crash, Mount replays the surviving entries against the state of the
// last consistency point — the paper's §2.2 recovery path.

type opcode byte

const (
	opCreate opcode = iota + 1
	opMkdir
	opSymlink
	opWrite
	opTruncate
	opRemove
	opRmdir
	opLink
	opRename
	opSetAttr
)

// logEnc builds one log entry.
type logEnc struct{ buf []byte }

func newLogEnc(op opcode) *logEnc { return &logEnc{buf: []byte{byte(op)}} }
func (e *logEnc) u32(v uint32) *logEnc {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	e.buf = append(e.buf, b[:]...)
	return e
}
func (e *logEnc) u64(v uint64) *logEnc {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.buf = append(e.buf, b[:]...)
	return e
}
func (e *logEnc) str(s string) *logEnc { e.u32(uint32(len(s))); e.buf = append(e.buf, s...); return e }
func (e *logEnc) bytes(b []byte) *logEnc {
	e.u32(uint32(len(b)))
	e.buf = append(e.buf, b...)
	return e
}

// logDec parses one log entry.
type logDec struct {
	buf []byte
	off int
	err error
}

func (d *logDec) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.buf) {
		d.err = fmt.Errorf("%w: truncated log entry", ErrCorrupt)
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *logDec) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.err = fmt.Errorf("%w: truncated log entry", ErrCorrupt)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *logDec) str() string { return string(d.bytes()) }

func (d *logDec) bytes() []byte {
	n := int(d.u32())
	if d.err != nil || d.off+n > len(d.buf) {
		d.err = fmt.Errorf("%w: truncated log entry", ErrCorrupt)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// append commits an entry to NVRAM unless logging is off or replaying.
func (fs *FS) logAppend(ctx context.Context, e *logEnc) {
	if fs.log == nil || fs.replaying || fs.noLog {
		return
	}
	// Append never legitimately fails here: maybeCP keeps the log
	// below capacity. A failure indicates a sizing bug.
	if err := fs.log.Append(ctx, e.buf); err != nil {
		panic(fmt.Sprintf("wafl: NVRAM append failed: %v", err))
	}
}

func (fs *FS) logCreate(ctx context.Context, op opcode, parent Inum, name string, ino Inum, mode, uid, gid uint32, target string) {
	fs.logAppend(ctx, newLogEnc(op).u32(uint32(parent)).str(name).u32(uint32(ino)).u32(mode).u32(uid).u32(gid).str(target))
}

func (fs *FS) logWrite(ctx context.Context, ino Inum, off uint64, data []byte) {
	fs.logAppend(ctx, newLogEnc(opWrite).u32(uint32(ino)).u64(off).bytes(data))
}

func (fs *FS) logTruncate(ctx context.Context, ino Inum, size uint64) {
	fs.logAppend(ctx, newLogEnc(opTruncate).u32(uint32(ino)).u64(size))
}

func (fs *FS) logNameOp(ctx context.Context, op opcode, parent Inum, name string) {
	fs.logAppend(ctx, newLogEnc(op).u32(uint32(parent)).str(name))
}

func (fs *FS) logLink(ctx context.Context, ino, parent Inum, name string) {
	fs.logAppend(ctx, newLogEnc(opLink).u32(uint32(ino)).u32(uint32(parent)).str(name))
}

func (fs *FS) logRename(ctx context.Context, srcDir Inum, srcName string, dstDir Inum, dstName string) {
	fs.logAppend(ctx, newLogEnc(opRename).u32(uint32(srcDir)).str(srcName).u32(uint32(dstDir)).str(dstName))
}

// attr serialization: a presence bitmask followed by present fields.
const (
	attrHasMode = 1 << iota
	attrHasUID
	attrHasGID
	attrHasAtime
	attrHasMtime
	attrHasXMode
	attrHasFlags
	attrHasQtree
)

func encodeAttr(e *logEnc, a Attr) {
	var mask uint32
	if a.Mode != nil {
		mask |= attrHasMode
	}
	if a.UID != nil {
		mask |= attrHasUID
	}
	if a.GID != nil {
		mask |= attrHasGID
	}
	if a.Atime != nil {
		mask |= attrHasAtime
	}
	if a.Mtime != nil {
		mask |= attrHasMtime
	}
	if a.XMode != nil {
		mask |= attrHasXMode
	}
	if a.Flags != nil {
		mask |= attrHasFlags
	}
	if a.QtreeID != nil {
		mask |= attrHasQtree
	}
	e.u32(mask)
	if a.Mode != nil {
		e.u32(*a.Mode)
	}
	if a.UID != nil {
		e.u32(*a.UID)
	}
	if a.GID != nil {
		e.u32(*a.GID)
	}
	if a.Atime != nil {
		e.u64(uint64(*a.Atime))
	}
	if a.Mtime != nil {
		e.u64(uint64(*a.Mtime))
	}
	if a.XMode != nil {
		e.u32(*a.XMode)
	}
	if a.Flags != nil {
		e.u32(*a.Flags)
	}
	if a.QtreeID != nil {
		e.u32(*a.QtreeID)
	}
}

func decodeAttr(d *logDec) Attr {
	var a Attr
	mask := d.u32()
	if mask&attrHasMode != 0 {
		v := d.u32()
		a.Mode = &v
	}
	if mask&attrHasUID != 0 {
		v := d.u32()
		a.UID = &v
	}
	if mask&attrHasGID != 0 {
		v := d.u32()
		a.GID = &v
	}
	if mask&attrHasAtime != 0 {
		v := int64(d.u64())
		a.Atime = &v
	}
	if mask&attrHasMtime != 0 {
		v := int64(d.u64())
		a.Mtime = &v
	}
	if mask&attrHasXMode != 0 {
		v := d.u32()
		a.XMode = &v
	}
	if mask&attrHasFlags != 0 {
		v := d.u32()
		a.Flags = &v
	}
	if mask&attrHasQtree != 0 {
		v := d.u32()
		a.QtreeID = &v
	}
	return a
}

func (fs *FS) logSetAttr(ctx context.Context, ino Inum, a Attr) {
	e := newLogEnc(opSetAttr).u32(uint32(ino))
	encodeAttr(e, a)
	fs.logAppend(ctx, e)
}

// replay re-executes logged operations against the mounted state. The
// inode numbers recorded at log time must match the ones assigned
// during replay; a mismatch means the log does not belong to this
// filesystem state.
func (fs *FS) replay(ctx context.Context, entries [][]byte) error {
	for i, raw := range entries {
		if len(raw) == 0 {
			return fmt.Errorf("%w: empty log entry %d", ErrCorrupt, i)
		}
		d := &logDec{buf: raw, off: 1}
		op := opcode(raw[0])
		var err error
		switch op {
		case opCreate, opMkdir, opSymlink:
			parent := Inum(d.u32())
			name := d.str()
			wantIno := Inum(d.u32())
			mode := d.u32()
			uid := d.u32()
			gid := d.u32()
			target := d.str()
			if d.err != nil {
				return d.err
			}
			var got Inum
			got, err = fs.makeNode(ctx, parent, name, mode, uid, gid, target)
			if err == nil && got != wantIno {
				return fmt.Errorf("%w: replay of %q assigned inode %d, log says %d",
					ErrCrossed, name, got, wantIno)
			}
		case opWrite:
			ino := Inum(d.u32())
			off := d.u64()
			data := d.bytes()
			if d.err != nil {
				return d.err
			}
			err = fs.writeAt(ctx, ino, off, data)
			// Writes are logged before validation (see FS.Write); an
			// operation that failed ENOSPC originally fails the same
			// way here and is skipped, reproducing the outcome.
			if errors.Is(err, ErrNoSpace) || errors.Is(err, ErrFileTooBig) {
				err = nil
			}
		case opTruncate:
			ino := Inum(d.u32())
			size := d.u64()
			if d.err != nil {
				return d.err
			}
			err = fs.truncateTo(ctx, ino, size)
		case opRemove:
			parent := Inum(d.u32())
			name := d.str()
			if d.err != nil {
				return d.err
			}
			err = fs.Remove(ctx, parent, name)
		case opRmdir:
			parent := Inum(d.u32())
			name := d.str()
			if d.err != nil {
				return d.err
			}
			err = fs.Rmdir(ctx, parent, name)
		case opLink:
			ino := Inum(d.u32())
			parent := Inum(d.u32())
			name := d.str()
			if d.err != nil {
				return d.err
			}
			err = fs.Link(ctx, ino, parent, name)
		case opRename:
			srcDir := Inum(d.u32())
			srcName := d.str()
			dstDir := Inum(d.u32())
			dstName := d.str()
			if d.err != nil {
				return d.err
			}
			err = fs.Rename(ctx, srcDir, srcName, dstDir, dstName)
		case opSetAttr:
			ino := Inum(d.u32())
			attr := decodeAttr(d)
			if d.err != nil {
				return d.err
			}
			err = fs.SetAttr(ctx, ino, attr)
		default:
			return fmt.Errorf("%w: unknown log opcode %d", ErrCorrupt, op)
		}
		if err != nil {
			return fmt.Errorf("wafl: replaying entry %d (op %d): %w", i, op, err)
		}
	}
	return nil
}
