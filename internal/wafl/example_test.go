package wafl_test

import (
	"context"
	"fmt"

	"repro/internal/storage"
	"repro/internal/wafl"
)

// The basic lifecycle: format a volume, write a file, snapshot it,
// diverge, and read both worlds.
func Example() {
	ctx := context.Background()
	fs, err := wafl.Mkfs(ctx, storage.NewMemDevice(1024), nil, wafl.Options{})
	if err != nil {
		panic(err)
	}
	if _, err := fs.WriteFile(ctx, "/etc/motd", []byte("hello, 1999"), 0644); err != nil {
		panic(err)
	}
	if err := fs.CreateSnapshot(ctx, "before"); err != nil {
		panic(err)
	}
	if _, err := fs.WriteFile(ctx, "/etc/motd", []byte("hello, 2026"), 0644); err != nil {
		panic(err)
	}

	live, _ := fs.ActiveView().ReadFile(ctx, "/etc/motd")
	snap, _ := fs.SnapshotView("before")
	old, _ := snap.ReadFile(ctx, "/etc/motd")
	fmt.Printf("live: %s\n", live)
	fmt.Printf("snapshot: %s\n", old)
	// Output:
	// live: hello, 2026
	// snapshot: hello, 1999
}

// Reverting to a snapshot rewinds the whole active filesystem.
func ExampleFS_RevertToSnapshot() {
	ctx := context.Background()
	fs, _ := wafl.Mkfs(ctx, storage.NewMemDevice(1024), nil, wafl.Options{})
	fs.WriteFile(ctx, "/state", []byte("good"), 0644)
	fs.CreateSnapshot(ctx, "known-good")
	fs.WriteFile(ctx, "/state", []byte("bad"), 0644)

	if err := fs.RevertToSnapshot(ctx, "known-good"); err != nil {
		panic(err)
	}
	got, _ := fs.ActiveView().ReadFile(ctx, "/state")
	fmt.Println(string(got))
	// Output:
	// good
}
