package wafl

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/sim"
)

// CP takes a consistency point: every piece of dirty state — file data,
// block trees, inodes, the inode file, the block-map file — is written
// copy-on-write to freshly allocated blocks, and finally a new root
// structure is committed to the fixed fsinfo locations. Between CPs
// nothing on disk changes except by allocation of previously free,
// unfrozen blocks, so the on-disk image is always the self-consistent
// state of the previous CP (paper §2.2).
func (fs *FS) CP(ctx context.Context) error {
	defer fs.lock(ctx)()
	// 1. Flush dirty file data and rebuild the block trees of modified
	//    files, in inode order for determinism.
	inos := make([]Inum, 0, len(fs.states))
	for ino, st := range fs.states {
		if st.inodeDirty || len(st.dirty) > 0 {
			inos = append(inos, ino)
		}
	}
	sort.Slice(inos, func(i, j int) bool { return inos[i] < inos[j] })

	dirtyInodeBlocks := make(map[uint32]bool)
	for _, ino := range inos {
		st := fs.states[ino]
		if err := fs.flushState(ctx, st); err != nil {
			return err
		}
		dirtyInodeBlocks[uint32(ino)/InodesPerBlock] = true
	}

	// 2. Serialize dirty inodes into staged inode-file blocks.
	if err := fs.ensureFmap(ctx, fs.inofSt); err != nil {
		return err
	}
	needBlocks := (uint32(fs.nextIno) + InodesPerBlock - 1) / InodesPerBlock
	fs.inofSt.ino.Size = uint64(needBlocks) * BlockSize
	fbns := make([]uint32, 0, len(dirtyInodeBlocks))
	for fbn := range dirtyInodeBlocks {
		fbns = append(fbns, fbn)
	}
	sort.Slice(fbns, func(i, j int) bool { return fbns[i] < fbns[j] })
	for _, fbn := range fbns {
		blk := make([]byte, BlockSize)
		if pbn := fs.inofSt.fmap[fbn]; pbn != 0 {
			old, err := fs.readBlock(ctx, pbn)
			if err != nil {
				return err
			}
			copy(blk, old)
		}
		for slot := uint32(0); slot < InodesPerBlock; slot++ {
			ino := Inum(fbn*InodesPerBlock + slot)
			if st, ok := fs.states[ino]; ok && st.inodeDirty {
				st.ino.Marshal(blk[slot*InodeSize:])
			}
		}
		fs.inofSt.dirty[fbn] = blk
	}
	if err := fs.flushState(ctx, fs.inofSt); err != nil {
		return err
	}
	fs.info.InodeFile = fs.inofSt.ino
	fs.info.InodeFile.Mode = ModeReg

	// 3. Rewrite the block-map file. Allocation placement does not
	//    depend on map contents, so we can allocate every block of the
	//    new map (and its tree) first and serialize afterwards — the
	//    serialized contents then already reflect those allocations.
	if err := fs.flushBlkmapFile(ctx); err != nil {
		return err
	}

	// 4. Commit the new root structure, redundantly.
	fs.info.Gen++
	fs.info.CPTime = fs.Clock()
	fs.info.NInodes = uint64(fs.nextIno)
	fsiBuf := marshalFsinfo(&fs.info)
	for _, start := range []int{fsinfoBlockA, fsinfoBlockB} {
		for i := 0; i < fsinfoSpan; i++ {
			if err := fs.dev.WriteBlock(ctx, start+i, fsiBuf[i*BlockSize:(i+1)*BlockSize]); err != nil {
				return err
			}
		}
	}

	// 5. The on-disk image just became the fallback state: freeze it,
	//    clear dirty flags, reset the NVRAM log.
	fs.bmap.refreeze()
	for _, st := range fs.states {
		st.inodeDirty = false
	}
	fs.stagedBlocks = 0
	if fs.log != nil && !fs.replaying {
		fs.log.Reset()
	}
	fs.lastCPAt = fs.nowSim()
	fs.cpCount++
	fs.trimStates()
	return nil
}

// flushState writes st's dirty data blocks to fresh allocations and
// rebuilds its block tree from the staged map.
func (fs *FS) flushState(ctx context.Context, st *istate) error {
	if len(st.dirty) == 0 && !st.inodeDirty && !st.treeDirty {
		return nil
	}
	if len(st.dirty) > 0 || st.treeDirty {
		if err := fs.ensureFmap(ctx, st); err != nil {
			return err
		}
		fbns := make([]uint32, 0, len(st.dirty))
		for fbn := range st.dirty {
			fbns = append(fbns, fbn)
		}
		sort.Slice(fbns, func(i, j int) bool { return fbns[i] < fbns[j] })
		for _, fbn := range fbns {
			npbn := fs.bmap.alloc()
			if npbn == 0 {
				return ErrNoSpace
			}
			if old := st.fmap[fbn]; old != 0 {
				fs.bmap.free(old)
				fs.cache.drop(old)
			}
			st.fmap[fbn] = npbn
			if err := fs.writeBlock(ctx, npbn, st.dirty[fbn]); err != nil {
				return err
			}
			fs.costs.charge(ctx, fs.costs.CPBlock)
		}
		st.dirty = make(map[uint32][]byte)
		if err := fs.rebuildTree(ctx, st); err != nil {
			return err
		}
		st.treeDirty = false
	}
	st.inodeDirty = true // inode carries new tree roots and must be serialized
	return nil
}

// rebuildTree frees st's old pointer blocks and writes a fresh tree
// covering exactly the staged map.
func (fs *FS) rebuildTree(ctx context.Context, st *istate) error {
	for _, pbn := range st.ptrBlocks {
		fs.bmap.free(pbn)
		fs.cache.drop(pbn)
	}
	st.ptrBlocks = st.ptrBlocks[:0]

	var maxFbn uint32
	hasAny := false
	for fbn := range st.fmap {
		if st.fmap[fbn] == 0 {
			delete(st.fmap, fbn)
			continue
		}
		hasAny = true
		if fbn > maxFbn {
			maxFbn = fbn
		}
	}
	for i := range st.ino.Direct {
		st.ino.Direct[i] = 0
	}
	st.ino.Indirect = 0
	st.ino.DblInd = 0
	if !hasAny {
		return nil
	}
	for fbn, pbn := range st.fmap {
		if fbn < NDirect {
			st.ino.Direct[fbn] = pbn
		}
	}
	writePtrBlock := func(ptrs []BlockNo) (BlockNo, error) {
		pbn := fs.bmap.alloc()
		if pbn == 0 {
			return 0, ErrNoSpace
		}
		blk := make([]byte, BlockSize)
		for i, p := range ptrs {
			putU32(blk[4*i:], uint32(p))
		}
		if err := fs.writeBlock(ctx, pbn, blk); err != nil {
			return 0, err
		}
		fs.costs.charge(ctx, fs.costs.CPBlock)
		st.ptrBlocks = append(st.ptrBlocks, pbn)
		return pbn, nil
	}
	if maxFbn >= NDirect {
		ptrs := make([]BlockNo, PtrsPerBlock)
		any := false
		for i := 0; i < PtrsPerBlock; i++ {
			if p := st.fmap[NDirect+uint32(i)]; p != 0 {
				ptrs[i] = p
				any = true
			}
		}
		if any {
			pbn, err := writePtrBlock(ptrs)
			if err != nil {
				return err
			}
			st.ino.Indirect = pbn
		}
	}
	if maxFbn >= NDirect+PtrsPerBlock {
		l1 := make([]BlockNo, PtrsPerBlock)
		anyL1 := false
		for i := 0; i < PtrsPerBlock; i++ {
			l2 := make([]BlockNo, PtrsPerBlock)
			any := false
			base := NDirect + PtrsPerBlock + uint32(i)*PtrsPerBlock
			if base > maxFbn { // past the end of the file
				break
			}
			for j := 0; j < PtrsPerBlock; j++ {
				if p := st.fmap[base+uint32(j)]; p != 0 {
					l2[j] = p
					any = true
				}
			}
			if any {
				pbn, err := writePtrBlock(l2)
				if err != nil {
					return err
				}
				l1[i] = pbn
				anyL1 = true
			}
		}
		if anyL1 {
			pbn, err := writePtrBlock(l1)
			if err != nil {
				return err
			}
			st.ino.DblInd = pbn
		}
	}
	return nil
}

// flushBlkmapFile rewrites the whole block-map file copy-on-write.
func (fs *FS) flushBlkmapFile(ctx context.Context) error {
	st := &istate{
		ino:       fs.info.BlkmapFile,
		dirty:     make(map[uint32][]byte),
		fmap:      make(map[uint32]BlockNo),
		fmapValid: false,
	}
	if err := fs.ensureFmap(ctx, st); err != nil {
		return err
	}
	// Free the old map entirely, then allocate the new one.
	for fbn, pbn := range st.fmap {
		fs.bmap.free(pbn)
		fs.cache.drop(pbn)
		delete(st.fmap, fbn)
	}
	nWords := int(fs.info.NBlocks)
	nBlks := (nWords + PtrsPerBlock - 1) / PtrsPerBlock
	for fbn := 0; fbn < nBlks; fbn++ {
		pbn := fs.bmap.alloc()
		if pbn == 0 {
			return ErrNoSpace
		}
		st.fmap[uint32(fbn)] = pbn
	}
	if err := fs.rebuildTree(ctx, st); err != nil {
		return err
	}
	// Serialize after every allocation above has mutated the map.
	for fbn := 0; fbn < nBlks; fbn++ {
		blk := make([]byte, BlockSize)
		for i := 0; i < PtrsPerBlock && fbn*PtrsPerBlock+i < nWords; i++ {
			putU32(blk[4*i:], fs.bmap.words[fbn*PtrsPerBlock+i])
		}
		if err := fs.writeBlock(ctx, st.fmap[uint32(fbn)], blk); err != nil {
			return err
		}
		fs.costs.charge(ctx, fs.costs.CPBlock)
	}
	st.ino.Mode = ModeReg
	st.ino.Size = uint64(nBlks) * BlockSize
	fs.info.BlkmapFile = st.ino
	return nil
}

// trimStates bounds the in-memory inode/state cache, keeping recently
// interesting entries only. States are clean after a CP, so dropping
// them is always safe.
func (fs *FS) trimStates() {
	const maxStates = 8192
	if len(fs.states) <= maxStates {
		return
	}
	for ino, st := range fs.states {
		if ino == RootIno {
			continue
		}
		if !st.inodeDirty && len(st.dirty) == 0 {
			delete(fs.states, ino)
		}
		if len(fs.states) <= maxStates/2 {
			break
		}
	}
}

// nowSim returns the simulation clock, or zero when untimed.
func (fs *FS) nowSim() sim.Time {
	if fs.opts.Env != nil {
		return fs.opts.Env.Now()
	}
	return 0
}

// maybeCP takes a consistency point when policy calls for one: the
// NVRAM log has hit its high-water mark, or the CP interval has passed
// on the virtual clock. Never fires during replay (the log must keep
// its entries until a deliberate post-replay CP).
func (fs *FS) maybeCP(ctx context.Context) error {
	if fs.replaying {
		return nil
	}
	if fs.log != nil && fs.log.NeedCP() {
		return fs.CP(ctx)
	}
	if fs.opts.Env != nil && fs.opts.CPInterval > 0 && fs.nowSim()-fs.lastCPAt >= fs.opts.CPInterval {
		return fs.CP(ctx)
	}
	return nil
}

// Crash simulates a power loss: all staged state is discarded. The
// caller remounts with Mount, which replays the NVRAM log. The FS must
// not be used afterwards.
func (fs *FS) Crash() {
	fs.states = nil
	fs.inofSt = nil
	fs.bmap = nil
	fs.cache = newBlockCache(0)
}

// String describes the filesystem briefly.
func (fs *FS) String() string {
	return fmt.Sprintf("wafl gen=%d blocks=%d used=%d inodes=%d",
		fs.info.Gen, fs.info.NBlocks, fs.bmap.countPlane(ActiveBit), fs.nextIno)
}
