package wafl

import (
	"strings"
	"testing"
)

// White-box corruption tests: damage specific structures and confirm
// the checker names the problem. A checker that never fires is worse
// than none.

func checkProblems(t *testing.T, fs *FS) []string {
	t.Helper()
	problems, err := fs.Check(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return problems
}

func wantProblem(t *testing.T, problems []string, substr string) {
	t.Helper()
	for _, p := range problems {
		if strings.Contains(p, substr) {
			return
		}
	}
	t.Fatalf("no problem mentions %q; got %v", substr, problems)
}

func TestCheckDetectsStrayActiveBit(t *testing.T) {
	fs := newFS(t, 512)
	fs.WriteFile(ctx, "/f", randBytes(1, 8192), 0644)
	fs.CP(ctx)
	// Mark a free block active: leaked space.
	for b := BlockNo(8); int(b) < fs.NumBlocks(); b++ {
		if fs.bmap.words[b] == 0 {
			fs.bmap.setActive(b)
			break
		}
	}
	wantProblem(t, checkProblems(t, fs), "referenced by nothing")
}

func TestCheckDetectsMissingActiveBit(t *testing.T) {
	fs := newFS(t, 512)
	ino, _ := fs.WriteFile(ctx, "/f", randBytes(2, 8192), 0644)
	fs.CP(ctx)
	pbn, err := fs.ActiveView().BlockAt(ctx, ino, 0)
	if err != nil || pbn == 0 {
		t.Fatal("no block to corrupt")
	}
	fs.bmap.words[pbn] &^= ActiveBit
	wantProblem(t, checkProblems(t, fs), "not active in the map")
}

func TestCheckDetectsDoubleReference(t *testing.T) {
	fs := newFS(t, 512)
	a, _ := fs.WriteFile(ctx, "/a", randBytes(3, 4096), 0644)
	b, _ := fs.WriteFile(ctx, "/b", randBytes(4, 4096), 0644)
	fs.CP(ctx)
	// Point b's first block at a's first block.
	pa, _ := fs.ActiveView().BlockAt(ctx, a, 0)
	stB, err := fs.state(ctx, b)
	if err != nil {
		t.Fatal(err)
	}
	old := stB.ino.Direct[0]
	stB.ino.Direct[0] = pa
	stB.inodeDirty = true
	fs.bmap.free(old)
	wantProblem(t, checkProblems(t, fs), "referenced by both")
}

func TestCheckDetectsWrongNlink(t *testing.T) {
	fs := newFS(t, 512)
	ino, _ := fs.WriteFile(ctx, "/f", []byte("x"), 0644)
	st, err := fs.state(ctx, ino)
	if err != nil {
		t.Fatal(err)
	}
	st.ino.Nlink = 5
	st.inodeDirty = true
	wantProblem(t, checkProblems(t, fs), "nlink")
}

func TestCheckDetectsDanglingDirEntry(t *testing.T) {
	fs := newFS(t, 512)
	ino, _ := fs.WriteFile(ctx, "/victim", []byte("x"), 0644)
	// Free the inode behind the directory's back.
	if err := fs.freeInode(ctx, ino); err != nil {
		t.Fatal(err)
	}
	wantProblem(t, checkProblems(t, fs), "unallocated inode")
}

func TestCheckDetectsSizeBeyondTree(t *testing.T) {
	fs := newFS(t, 512)
	ino, _ := fs.WriteFile(ctx, "/f", randBytes(5, 3*BlockSize), 0644)
	fs.CP(ctx)
	st, err := fs.state(ctx, ino)
	if err != nil {
		t.Fatal(err)
	}
	st.ino.Size = BlockSize // blocks now map beyond the claimed size
	st.inodeDirty = true
	wantProblem(t, checkProblems(t, fs), "beyond its size")
}

func TestCheckCleanOnHealthyChurn(t *testing.T) {
	// After a storm of mixed operations the checker must stay silent —
	// guarding against over-eager rules as much as missed corruption.
	fs := newFS(t, 4096)
	for i := 0; i < 5; i++ {
		fs.WriteFile(ctx, "/d/a", randBytes(int64(i), 10000), 0644)
		fs.WriteFile(ctx, "/d/b", randBytes(int64(i+50), 200), 0600)
		fs.Symlink(ctx, RootIno, "l", "/d/a")
		ino, _ := fs.ActiveView().Namei(ctx, "/d/a")
		fs.Link(ctx, ino, RootIno, "hard")
		fs.CreateSnapshot(ctx, "s")
		fs.RemovePath(ctx, "/d/b")
		fs.RemovePath(ctx, "/l")
		fs.Remove(ctx, RootIno, "hard")
		fs.DeleteSnapshot(ctx, "s")
	}
	if problems := checkProblems(t, fs); len(problems) > 0 {
		t.Fatalf("healthy filesystem flagged: %v", problems)
	}
}
