package wafl

import (
	"encoding/binary"
	"fmt"
)

// Inode is the in-memory and on-disk form of a file's metadata. The
// on-disk encoding is exactly InodeSize bytes, so InodesPerBlock of
// them pack into each inode-file block.
type Inode struct {
	Mode    uint32 // type and permission bits
	Nlink   uint32
	UID     uint32
	GID     uint32
	Size    uint64 // bytes
	Atime   int64  // unix nanoseconds
	Mtime   int64
	Ctime   int64
	Gen     uint32 // bumped each time the inode number is reused
	Flags   uint32 // FlagQtreeRoot etc.
	QtreeID uint32
	XMode   uint32 // opaque extended attributes (DOS bits / NT ACL id)

	Direct   [NDirect]BlockNo
	Indirect BlockNo
	DblInd   BlockNo
}

// Allocated reports whether the inode is in use (a zero Mode means a
// free inode-file slot).
func (ino *Inode) Allocated() bool { return ino.Mode != 0 }

// Blocks returns the number of file blocks implied by Size.
func (ino *Inode) Blocks() uint32 {
	return uint32((ino.Size + BlockSize - 1) / BlockSize)
}

// Marshal encodes the inode into buf, which must be at least InodeSize
// bytes.
func (ino *Inode) Marshal(buf []byte) {
	le := binary.LittleEndian
	le.PutUint32(buf[0:], ino.Mode)
	le.PutUint32(buf[4:], ino.Nlink)
	le.PutUint32(buf[8:], ino.UID)
	le.PutUint32(buf[12:], ino.GID)
	le.PutUint64(buf[16:], ino.Size)
	le.PutUint64(buf[24:], uint64(ino.Atime))
	le.PutUint64(buf[32:], uint64(ino.Mtime))
	le.PutUint64(buf[40:], uint64(ino.Ctime))
	le.PutUint32(buf[48:], ino.Gen)
	le.PutUint32(buf[52:], ino.Flags)
	le.PutUint32(buf[56:], ino.QtreeID)
	le.PutUint32(buf[60:], ino.XMode)
	for i, b := range ino.Direct {
		le.PutUint32(buf[64+4*i:], uint32(b))
	}
	le.PutUint32(buf[112:], uint32(ino.Indirect))
	le.PutUint32(buf[116:], uint32(ino.DblInd))
	le.PutUint64(buf[120:], 0) // reserved
}

// UnmarshalInode decodes an inode from buf (at least InodeSize bytes).
func UnmarshalInode(buf []byte) Inode {
	le := binary.LittleEndian
	var ino Inode
	ino.Mode = le.Uint32(buf[0:])
	ino.Nlink = le.Uint32(buf[4:])
	ino.UID = le.Uint32(buf[8:])
	ino.GID = le.Uint32(buf[12:])
	ino.Size = le.Uint64(buf[16:])
	ino.Atime = int64(le.Uint64(buf[24:]))
	ino.Mtime = int64(le.Uint64(buf[32:]))
	ino.Ctime = int64(le.Uint64(buf[40:]))
	ino.Gen = le.Uint32(buf[48:])
	ino.Flags = le.Uint32(buf[52:])
	ino.QtreeID = le.Uint32(buf[56:])
	ino.XMode = le.Uint32(buf[60:])
	for i := range ino.Direct {
		ino.Direct[i] = BlockNo(le.Uint32(buf[64+4*i:]))
	}
	ino.Indirect = BlockNo(le.Uint32(buf[112:]))
	ino.DblInd = BlockNo(le.Uint32(buf[116:]))
	return ino
}

// String implements fmt.Stringer for diagnostics.
func (ino *Inode) String() string {
	kind := "?"
	switch {
	case IsDir(ino.Mode):
		kind = "dir"
	case IsReg(ino.Mode):
		kind = "file"
	case IsSymlink(ino.Mode):
		kind = "symlink"
	case ino.Mode == 0:
		kind = "free"
	}
	return fmt.Sprintf("%s mode=%o nlink=%d size=%d", kind, ino.Mode, ino.Nlink, ino.Size)
}
