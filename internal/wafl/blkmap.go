package wafl

// The block map keeps one 32-bit word per volume block (paper §2.1):
// bit 0 says the block belongs to the active filesystem and bit s
// (1 ≤ s ≤ 20) says it belongs to the snapshot with id s. A block is
// free only when its whole word is zero.
//
// The in-memory map reflects the state the *next* consistency point
// will commit. Blocks referenced by the *last committed* consistency
// point are additionally held in the frozen set and are never
// reallocated before the next CP commits, so a crash can always fall
// back to the on-disk image.

// ActiveBit is the block-map bit plane of the live filesystem.
const ActiveBit uint32 = 1 << 0

// SnapBit returns the bit-plane mask for snapshot id s (1..MaxSnapshots).
func SnapBit(id int) uint32 { return 1 << uint(id) }

// blkmap is the in-memory block map plus the allocator state.
type blkmap struct {
	words  []uint32
	frozen []uint64 // bitset: referenced by the last committed CP
	cursor int      // next allocation probe position
	nfree  int      // blocks with zero word and not frozen
}

func newBlkmap(nblocks int) *blkmap {
	m := &blkmap{
		words:  make([]uint32, nblocks),
		frozen: make([]uint64, (nblocks+63)/64),
	}
	m.nfree = nblocks
	return m
}

func (m *blkmap) isFrozen(b BlockNo) bool {
	return m.frozen[b/64]&(1<<(uint(b)%64)) != 0
}

// refreeze recomputes the frozen set from the current words; called
// when a consistency point commits (everything now on disk is
// protected until the next CP).
func (m *blkmap) refreeze() {
	for i := range m.frozen {
		m.frozen[i] = 0
	}
	free := 0
	for b, w := range m.words {
		if w != 0 {
			m.frozen[b/64] |= 1 << (uint(b) % 64)
		} else {
			free++
		}
	}
	m.nfree = free
}

// alloc finds a free block near the cursor, marks it active and
// returns it. It returns 0 (an invalid block) when the volume is full.
// The moving cursor gives WAFL-ish locality: consecutive allocations
// are contiguous when free space is contiguous, and scattered when a
// mature filesystem has scattered its free space — the effect the
// paper's "mature data set" footnote describes.
func (m *blkmap) alloc() BlockNo {
	n := len(m.words)
	for i := 0; i < n; i++ {
		b := (m.cursor + i) % n
		if b < fsinfoReserved { // fsinfo blocks are never allocatable
			continue
		}
		if m.words[b] == 0 && !m.isFrozen(BlockNo(b)) {
			m.words[b] = ActiveBit
			m.cursor = b + 1
			m.nfree--
			return BlockNo(b)
		}
	}
	return 0
}

// free clears the active bit of b. The block becomes reusable only
// once no snapshot plane holds it and the next CP commits.
func (m *blkmap) free(b BlockNo) {
	if b < fsinfoReserved || int(b) >= len(m.words) {
		return
	}
	m.words[b] &^= ActiveBit
}

// setActive marks b as belonging to the active filesystem without
// going through the allocator (used by mkfs and image restore).
func (m *blkmap) setActive(b BlockNo) {
	if int(b) < len(m.words) {
		m.words[b] |= ActiveBit
	}
}

// copyPlane copies the src plane into the dst plane across the map,
// implementing snapshot creation (active→snap) and, inverted, nothing
// else: snapshot deletion just clears the plane.
func (m *blkmap) copyPlane(srcMask, dstMask uint32) {
	for i, w := range m.words {
		if w&srcMask != 0 {
			m.words[i] |= dstMask
		} else {
			m.words[i] &^= dstMask
		}
	}
}

// clearPlane removes every bit of the given plane (snapshot deletion).
func (m *blkmap) clearPlane(mask uint32) {
	for i := range m.words {
		m.words[i] &^= mask
	}
}

// countPlane returns the number of blocks in the given plane.
func (m *blkmap) countPlane(mask uint32) int {
	n := 0
	for _, w := range m.words {
		if w&mask != 0 {
			n++
		}
	}
	return n
}

// freeBlocks returns the number of blocks allocatable right now.
func (m *blkmap) freeBlocks() int {
	n := 0
	for b, w := range m.words {
		if b >= fsinfoReserved && w == 0 && !m.isFrozen(BlockNo(b)) {
			n++
		}
	}
	return n
}
