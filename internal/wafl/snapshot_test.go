package wafl

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/storage"
)

func TestSnapshotPreservesOldContents(t *testing.T) {
	fs := newFS(t, 1024)
	old := randBytes(1, 3*BlockSize)
	fs.WriteFile(ctx, "/f", old, 0644)
	if err := fs.CreateSnapshot(ctx, "snap1"); err != nil {
		t.Fatal(err)
	}
	// Overwrite and delete in the active filesystem.
	newData := randBytes(2, 2*BlockSize)
	fs.WriteFile(ctx, "/f", newData, 0644)
	fs.WriteFile(ctx, "/g", []byte("post-snapshot file"), 0644)
	fs.CP(ctx)

	sv, err := fs.SnapshotView("snap1")
	if err != nil {
		t.Fatal(err)
	}
	got, err := sv.ReadFile(ctx, "/f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, old) {
		t.Fatal("snapshot does not preserve old contents")
	}
	if _, err := sv.ReadFile(ctx, "/g"); !errors.Is(err, ErrNotFound) {
		t.Fatal("post-snapshot file visible in snapshot")
	}
	active, _ := fs.ActiveView().ReadFile(ctx, "/f")
	if !bytes.Equal(active, newData) {
		t.Fatal("active view does not see new contents")
	}
	check(t, fs)
}

func TestSnapshotIsCheap(t *testing.T) {
	fs := newFS(t, 2048)
	fs.WriteFile(ctx, "/f", randBytes(3, 100*BlockSize), 0644)
	fs.CP(ctx)
	before := fs.UsedBlocks()
	if err := fs.CreateSnapshot(ctx, "s"); err != nil {
		t.Fatal(err)
	}
	after := fs.UsedBlocks()
	// Snapshot creation may only cost metadata (blkmap/inode file COW),
	// never a copy of the data.
	if after-before > 20 {
		t.Fatalf("snapshot cost %d blocks, want metadata only", after-before)
	}
}

func TestSnapshotDeleteFreesDivergedBlocks(t *testing.T) {
	fs := newFS(t, 2048)
	fs.WriteFile(ctx, "/f", randBytes(4, 200*BlockSize), 0644)
	fs.CreateSnapshot(ctx, "s")
	// Delete the file: blocks stay pinned by the snapshot.
	fs.RemovePath(ctx, "/f")
	fs.CP(ctx)
	pinned := fs.FreeBlocks()
	if err := fs.DeleteSnapshot(ctx, "s"); err != nil {
		t.Fatal(err)
	}
	released := fs.FreeBlocks()
	if released-pinned < 190 {
		t.Fatalf("snapshot delete released %d blocks, want ~200", released-pinned)
	}
	check(t, fs)
}

func TestSnapshotBlocksPinnedFromReuse(t *testing.T) {
	fs := newFS(t, 1024)
	data := randBytes(5, 50*BlockSize)
	ino, _ := fs.WriteFile(ctx, "/f", data, 0644)
	fs.CreateSnapshot(ctx, "s")
	// Churn the active filesystem hard: snapshot data must survive.
	for i := 0; i < 20; i++ {
		fs.WriteFile(ctx, "/churn", randBytes(int64(100+i), 30*BlockSize), 0644)
		fs.CP(ctx)
	}
	_ = ino
	sv, _ := fs.SnapshotView("s")
	got, err := sv.ReadFile(ctx, "/f")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("snapshot data corrupted by active churn: %v", err)
	}
	check(t, fs)
}

func TestSnapshotLimit(t *testing.T) {
	fs := newFS(t, 4096)
	for i := 0; i < MaxSnapshots; i++ {
		if err := fs.CreateSnapshot(ctx, fmt.Sprintf("s%d", i)); err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
	}
	if err := fs.CreateSnapshot(ctx, "overflow"); !errors.Is(err, ErrSnapLimit) {
		t.Fatalf("21st snapshot err = %v, want ErrSnapLimit", err)
	}
	// Deleting one frees a slot.
	if err := fs.DeleteSnapshot(ctx, "s7"); err != nil {
		t.Fatal(err)
	}
	if err := fs.CreateSnapshot(ctx, "again"); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotNames(t *testing.T) {
	fs := newFS(t, 512)
	if err := fs.CreateSnapshot(ctx, "nightly"); err != nil {
		t.Fatal(err)
	}
	if err := fs.CreateSnapshot(ctx, "nightly"); !errors.Is(err, ErrSnapExists) {
		t.Fatalf("duplicate name err = %v, want ErrSnapExists", err)
	}
	if err := fs.DeleteSnapshot(ctx, "nope"); !errors.Is(err, ErrSnapNotFound) {
		t.Fatalf("delete missing err = %v, want ErrSnapNotFound", err)
	}
	if _, err := fs.SnapshotView("nope"); !errors.Is(err, ErrSnapNotFound) {
		t.Fatalf("view of missing err = %v, want ErrSnapNotFound", err)
	}
	if err := fs.CreateSnapshot(ctx, ""); err == nil {
		t.Fatal("empty snapshot name accepted")
	}
}

func TestSnapshotsSurviveRemount(t *testing.T) {
	dev := storage.NewMemDevice(1024)
	fs, _ := Mkfs(ctx, dev, nil, Options{})
	data := randBytes(6, 10*BlockSize)
	fs.WriteFile(ctx, "/f", data, 0644)
	fs.CreateSnapshot(ctx, "keeper")
	fs.WriteFile(ctx, "/f", []byte("changed"), 0644)
	fs.CP(ctx)

	fs2, err := Mount(ctx, dev, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	snaps := fs2.Snapshots()
	if len(snaps) != 1 || snaps[0].Name != "keeper" {
		t.Fatalf("snapshots after remount = %v", snaps)
	}
	sv, err := fs2.SnapshotView("keeper")
	if err != nil {
		t.Fatal(err)
	}
	got, err := sv.ReadFile(ctx, "/f")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("snapshot contents after remount: %v", err)
	}
	check(t, fs2)
}

func TestBlockMapPlanesMatchPaperSemantics(t *testing.T) {
	// Build the four Table-1 block states across two snapshots and
	// verify the map words directly.
	fs := newFS(t, 1024)

	// Block state (1,1): present in A and B — a stable file.
	fs.WriteFile(ctx, "/stable", randBytes(7, BlockSize), 0644)
	// Block state (1,0): in A, deleted before B.
	fs.WriteFile(ctx, "/doomed", randBytes(8, BlockSize), 0644)
	fs.CreateSnapshot(ctx, "A")
	fs.RemovePath(ctx, "/doomed")
	// Block state (0,1): written between A and B.
	fs.WriteFile(ctx, "/fresh", randBytes(9, BlockSize), 0644)
	fs.CreateSnapshot(ctx, "B")

	a, _ := fs.Snapshot("A")
	b, _ := fs.Snapshot("B")
	aBit, bBit := SnapBit(int(a.ID)), SnapBit(int(b.ID))

	classify := func(path, snap string) uint32 {
		sv, err := fs.SnapshotView(snap)
		if err != nil {
			t.Fatal(err)
		}
		ino, err := sv.Namei(ctx, path)
		if err != nil {
			t.Fatal(err)
		}
		pbn, err := sv.BlockAt(ctx, ino, 0)
		if err != nil || pbn == 0 {
			t.Fatalf("BlockAt(%s@%s): %d, %v", path, snap, pbn, err)
		}
		return fs.BlockMapWord(pbn)
	}

	if w := classify("/stable", "A"); w&aBit == 0 || w&bBit == 0 {
		t.Errorf("stable block word %#x: want bits A and B", w)
	}
	if w := classify("/doomed", "A"); w&aBit == 0 || w&bBit != 0 {
		t.Errorf("doomed block word %#x: want A only", w)
	}
	if w := classify("/fresh", "B"); w&aBit != 0 || w&bBit == 0 {
		t.Errorf("fresh block word %#x: want B only", w)
	}
	check(t, fs)
}

func TestSnapshotOrderingAndListing(t *testing.T) {
	fs := newFS(t, 1024)
	names := []string{"first", "second", "third"}
	for _, n := range names {
		if err := fs.CreateSnapshot(ctx, n); err != nil {
			t.Fatal(err)
		}
	}
	snaps := fs.Snapshots()
	if len(snaps) != 3 {
		t.Fatalf("len = %d", len(snaps))
	}
	for i, n := range names {
		if snaps[i].Name != n {
			t.Fatalf("snaps[%d] = %q, want %q", i, snaps[i].Name, n)
		}
	}
	blocks, err := fs.SnapshotBlocks("second")
	if err != nil || blocks == 0 {
		t.Fatalf("SnapshotBlocks: %d, %v", blocks, err)
	}
}
