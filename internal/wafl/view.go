package wafl

import (
	"context"
	"fmt"
)

// View is a read surface over either the active filesystem or one
// snapshot. The active view sees staged (not yet consistency-pointed)
// state; snapshot views read purely from the frozen on-disk image —
// this is what lets logical dump "present a completely consistent view
// of the file system" (paper §3) while the live system keeps running.
type View struct {
	fs   *FS
	snap *SnapEntry // nil for the active view
}

// ActiveView returns the live filesystem view.
func (fs *FS) ActiveView() *View { return &View{fs: fs} }

// FS returns the filesystem the view belongs to.
func (v *View) FS() *FS { return v.fs }

// IsSnapshot reports whether this is a snapshot (read-only) view.
func (v *View) IsSnapshot() bool { return v.snap != nil }

// SnapshotName returns the snapshot's name, or "" for the active view.
func (v *View) SnapshotName() string {
	if v.snap == nil {
		return ""
	}
	return v.snap.Name
}

// NumInodes returns the number of inode slots visible in this view.
func (v *View) NumInodes(ctx context.Context) uint64 {
	if v.snap == nil {
		return uint64(v.fs.nextIno)
	}
	return v.snap.Root.Size / InodeSize
}

// GetInode returns inode ino as seen by the view.
func (v *View) GetInode(ctx context.Context, ino Inum) (Inode, error) {
	if v.snap == nil {
		return v.fs.GetInode(ctx, ino)
	}
	inode, err := v.getInodeSnap(ctx, ino)
	if err != nil {
		return Inode{}, err
	}
	if !inode.Allocated() {
		return Inode{}, fmt.Errorf("%w: %d is free in snapshot %q", ErrBadInode, ino, v.snap.Name)
	}
	return inode, nil
}

// getInodeSnap reads an inode (possibly a free slot) from the
// snapshot's frozen inode file.
func (v *View) getInodeSnap(ctx context.Context, ino Inum) (Inode, error) {
	if ino < RootIno || uint64(ino) >= v.NumInodes(ctx) {
		return Inode{}, fmt.Errorf("%w: %d", ErrBadInode, ino)
	}
	fbn := uint32(ino) / InodesPerBlock
	pbn, err := v.fs.walkTree(ctx, &v.snap.Root, fbn)
	if err != nil {
		return Inode{}, err
	}
	if pbn == 0 {
		return Inode{}, nil
	}
	blk, err := v.fs.readBlock(ctx, pbn)
	if err != nil {
		return Inode{}, err
	}
	off := (uint32(ino) % InodesPerBlock) * InodeSize
	return UnmarshalInode(blk[off : off+InodeSize]), nil
}

// InodeIfAllocated returns (inode, true) when slot ino is allocated in
// this view, used by dump's inode-ordered sweep.
func (v *View) InodeIfAllocated(ctx context.Context, ino Inum) (Inode, bool, error) {
	if v.snap == nil {
		if ino < RootIno || ino >= v.fs.nextIno {
			return Inode{}, false, nil
		}
		st, err := v.fs.state(ctx, ino)
		if err != nil {
			return Inode{}, false, err
		}
		return st.ino, st.ino.Allocated(), nil
	}
	if ino < RootIno || uint64(ino) >= v.NumInodes(ctx) {
		return Inode{}, false, nil
	}
	inode, err := v.getInodeSnap(ctx, ino)
	if err != nil {
		return Inode{}, false, err
	}
	return inode, inode.Allocated(), nil
}

// readAt reads file data as seen by the view.
func (v *View) readAt(ctx context.Context, ino Inum, off uint64, buf []byte) (int, error) {
	if v.snap == nil {
		return v.fs.readAt(ctx, ino, off, buf)
	}
	inode, err := v.GetInode(ctx, ino)
	if err != nil {
		return 0, err
	}
	return v.readAtSnap(ctx, &inode, off, buf)
}

func (v *View) readAtSnap(ctx context.Context, inode *Inode, off uint64, buf []byte) (int, error) {
	if off >= inode.Size {
		return 0, nil
	}
	if max := inode.Size - off; uint64(len(buf)) > max {
		buf = buf[:max]
	}
	n := 0
	for n < len(buf) {
		fbn := uint32((off + uint64(n)) / BlockSize)
		bo := int((off + uint64(n)) % BlockSize)
		want := len(buf) - n
		if want > BlockSize-bo {
			want = BlockSize - bo
		}
		pbn, err := v.fs.walkTree(ctx, inode, fbn)
		if err != nil {
			return n, err
		}
		if pbn == 0 {
			for i := 0; i < want; i++ {
				buf[n+i] = 0
			}
		} else {
			src, err := v.fs.readBlock(ctx, pbn)
			if err != nil {
				return n, err
			}
			copy(buf[n:n+want], src[bo:bo+want])
		}
		v.fs.costs.charge(ctx, v.fs.costs.ReadBlock+v.fs.costs.CopyBlock)
		n += want
	}
	return n, nil
}

// ReadAt reads up to len(buf) bytes of file ino starting at off,
// returning the count read (short only at end of file).
func (v *View) ReadAt(ctx context.Context, ino Inum, off uint64, buf []byte) (int, error) {
	inode, err := v.GetInode(ctx, ino)
	if err != nil {
		return 0, err
	}
	if IsDir(inode.Mode) {
		return 0, ErrIsDir
	}
	return v.readAt(ctx, ino, off, buf)
}

// BlockAt resolves file block fbn of ino to its physical block (0 for
// a hole), as seen by the view. Dump uses this to build hole maps.
func (v *View) BlockAt(ctx context.Context, ino Inum, fbn uint32) (BlockNo, error) {
	if v.snap == nil {
		st, err := v.fs.state(ctx, ino)
		if err != nil {
			return 0, err
		}
		if _, ok := st.dirty[fbn]; ok {
			return 1, nil // staged data: not a hole; physical home not yet assigned
		}
		return v.fs.mapping(ctx, st, fbn)
	}
	inode, err := v.GetInode(ctx, ino)
	if err != nil {
		return 0, err
	}
	return v.fs.walkTree(ctx, &inode, fbn)
}

// PrefetchBlock asynchronously reads physical block pbn into the
// buffer cache, charging device time without blocking the caller
// beyond the device's read-ahead queue depth. The logical dump engine
// drives its own read-ahead through this (paper §3).
func (v *View) PrefetchBlock(ctx context.Context, pbn BlockNo) {
	v.fs.prefetchBlock(ctx, pbn)
}

// Readlink returns the target of symlink ino. Targets are stored as
// file data.
func (v *View) Readlink(ctx context.Context, ino Inum) (string, error) {
	inode, err := v.GetInode(ctx, ino)
	if err != nil {
		return "", err
	}
	if !IsSymlink(inode.Mode) {
		return "", fmt.Errorf("%w: inode %d is not a symlink", ErrBadInode, ino)
	}
	buf := make([]byte, inode.Size)
	if _, err := v.readAt(ctx, ino, 0, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// ReadFile reads the whole contents of the file at path.
func (v *View) ReadFile(ctx context.Context, path string) ([]byte, error) {
	ino, err := v.Namei(ctx, path)
	if err != nil {
		return nil, err
	}
	inode, err := v.GetInode(ctx, ino)
	if err != nil {
		return nil, err
	}
	if IsDir(inode.Mode) {
		return nil, ErrIsDir
	}
	buf := make([]byte, inode.Size)
	if _, err := v.readAt(ctx, ino, 0, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Stat returns the inode behind path.
func (v *View) Stat(ctx context.Context, path string) (Inode, error) {
	ino, err := v.Namei(ctx, path)
	if err != nil {
		return Inode{}, err
	}
	return v.GetInode(ctx, ino)
}
