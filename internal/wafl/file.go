package wafl

import (
	"context"
	"fmt"
	"sort"
)

// state returns (creating if needed) the staged state for ino, loading
// the inode from the inode file on first touch.
func (fs *FS) state(ctx context.Context, ino Inum) (*istate, error) {
	if st, ok := fs.states[ino]; ok {
		return st, nil
	}
	if ino < RootIno || ino >= fs.nextIno {
		return nil, fmt.Errorf("%w: %d", ErrBadInode, ino)
	}
	inode, err := fs.readInodeRaw(ctx, ino)
	if err != nil {
		return nil, err
	}
	st := &istate{ino: inode, dirty: make(map[uint32][]byte)}
	fs.states[ino] = st
	return st, nil
}

// readInodeRaw reads inode ino straight from the on-disk inode file,
// bypassing staged state.
func (fs *FS) readInodeRaw(ctx context.Context, ino Inum) (Inode, error) {
	fbn := uint32(ino) / InodesPerBlock
	pbn, err := fs.inodeFilePbn(ctx, fbn)
	if err != nil {
		return Inode{}, err
	}
	if pbn == 0 {
		return Inode{}, nil // never-written inode-file region: free slots
	}
	blk, err := fs.readBlock(ctx, pbn)
	if err != nil {
		return Inode{}, err
	}
	off := (uint32(ino) % InodesPerBlock) * InodeSize
	return UnmarshalInode(blk[off : off+InodeSize]), nil
}

// inodeFilePbn maps an inode-file fbn to its physical block, using the
// staged map when present.
func (fs *FS) inodeFilePbn(ctx context.Context, fbn uint32) (BlockNo, error) {
	if fs.inofSt.fmapValid {
		return fs.inofSt.fmap[fbn], nil
	}
	return fs.walkTree(ctx, &fs.inofSt.ino, fbn)
}

// ensureFmap loads the complete fbn→pbn mapping for st if not already
// present, recording the tree's pointer blocks for later replacement.
func (fs *FS) ensureFmap(ctx context.Context, st *istate) error {
	if st.fmapValid {
		return nil
	}
	st.fmap = make(map[uint32]BlockNo)
	st.ptrBlocks = st.ptrBlocks[:0]
	err := fs.treeBlocks(ctx, &st.ino,
		func(fbn uint32, pbn BlockNo) { st.fmap[fbn] = pbn },
		func(pbn BlockNo) { st.ptrBlocks = append(st.ptrBlocks, pbn) })
	if err != nil {
		return err
	}
	st.fmapValid = true
	return nil
}

// mapping resolves fbn of st, preferring the staged map.
func (fs *FS) mapping(ctx context.Context, st *istate, fbn uint32) (BlockNo, error) {
	if st.fmapValid {
		return st.fmap[fbn], nil
	}
	return fs.walkTree(ctx, &st.ino, fbn)
}

// GetInode returns the current (staged or on-disk) inode.
func (fs *FS) GetInode(ctx context.Context, ino Inum) (Inode, error) {
	st, err := fs.state(ctx, ino)
	if err != nil {
		return Inode{}, err
	}
	if !st.ino.Allocated() {
		return Inode{}, fmt.Errorf("%w: %d is free", ErrBadInode, ino)
	}
	return st.ino, nil
}

// allocInode assigns an inode number: the lowest freed slot if any,
// else a fresh one at the end of the inode file. Lowest-first is load
// bearing: it makes allocation a pure function of the current free
// set, so NVRAM replay (which rebuilds the free set by rescanning the
// last consistency point) assigns the same numbers the live run did.
func (fs *FS) allocInode(ctx context.Context) (Inum, *istate, error) {
	var ino Inum
	if len(fs.freeInos) > 0 {
		ino = fs.freeInos[0]
		fs.freeInos = fs.freeInos[1:]
	} else {
		ino = fs.nextIno
		fs.nextIno++
	}
	st, err := fs.state(ctx, ino)
	if err != nil {
		return 0, nil, err
	}
	if st.ino.Allocated() {
		return 0, nil, fmt.Errorf("%w: alloc found inode %d in use", ErrCorrupt, ino)
	}
	gen := st.ino.Gen + 1
	st.ino = Inode{Gen: gen}
	st.inodeDirty = true
	st.fmap = make(map[uint32]BlockNo)
	st.fmapValid = true
	st.ptrBlocks = st.ptrBlocks[:0]
	return ino, st, nil
}

// readAt reads from the active file ino at off into buf, honouring
// staged data and holes, charging CPU costs and driving read-ahead.
func (fs *FS) readAt(ctx context.Context, ino Inum, off uint64, buf []byte) (int, error) {
	st, err := fs.state(ctx, ino)
	if err != nil {
		return 0, err
	}
	if !st.ino.Allocated() {
		return 0, ErrBadInode
	}
	if off >= st.ino.Size {
		return 0, nil
	}
	if max := st.ino.Size - off; uint64(len(buf)) > max {
		buf = buf[:max]
	}
	n := 0
	for n < len(buf) {
		fbn := uint32((off + uint64(n)) / BlockSize)
		bo := int((off + uint64(n)) % BlockSize)
		want := len(buf) - n
		if want > BlockSize-bo {
			want = BlockSize - bo
		}
		var src []byte
		if d, ok := st.dirty[fbn]; ok {
			src = d
		} else {
			pbn, err := fs.mapping(ctx, st, fbn)
			if err != nil {
				return n, err
			}
			if pbn != 0 {
				fs.readAhead(ctx, ino, st, fbn)
				src, err = fs.readBlock(ctx, pbn)
				if err != nil {
					return n, err
				}
			}
		}
		if src == nil {
			for i := 0; i < want; i++ {
				buf[n+i] = 0
			}
		} else {
			copy(buf[n:n+want], src[bo:bo+want])
		}
		fs.costs.charge(ctx, fs.costs.ReadBlock+fs.costs.CopyBlock)
		n += want
	}
	return n, nil
}

// readAhead prefetches the physical blocks behind the next few file
// blocks when the access pattern on ino is sequential. This is the
// filesystem's own policy; the dump engine in internal/logical can
// drive deeper, dump-aware read-ahead itself (paper §3).
func (fs *FS) readAhead(ctx context.Context, ino Inum, st *istate, fbn uint32) {
	if fs.pref == nil || fs.opts.ReadAhead <= 0 {
		return
	}
	last, seen := fs.lastRead[ino]
	fs.lastRead[ino] = fbn
	if !seen || fbn != last+1 {
		return
	}
	blocks := st.ino.Blocks()
	for i := uint32(1); i <= uint32(fs.opts.ReadAhead); i++ {
		next := fbn + i
		if next >= blocks {
			break
		}
		if _, ok := st.dirty[next]; ok {
			continue
		}
		pbn, err := fs.mapping(ctx, st, next)
		if err != nil || pbn == 0 {
			continue
		}
		fs.prefetchBlock(ctx, pbn)
	}
}

// prefetchBlock charges an asynchronous device read for pbn and warms
// the buffer cache with its contents, so the later demand read hits
// the cache instead of paying the device twice. The async charge is
// bounded by the disk's write-behind depth, which models a finite
// read-ahead queue.
func (fs *FS) prefetchBlock(ctx context.Context, pbn BlockNo) {
	if pbn == 0 || fs.cache.get(pbn) != nil {
		return
	}
	if fs.pref != nil {
		fs.pref.Prefetch(ctx, int(pbn))
	}
	buf := make([]byte, BlockSize)
	if err := fs.dev.ReadBlock(context.Background(), int(pbn), buf); err == nil {
		fs.cache.put(pbn, buf)
	}
}

// writeAt stages a write to the active file ino at off, charging the
// per-block CPU cost. The data is not on disk until the next
// consistency point; a copy is logged to NVRAM by the public op
// wrappers.
func (fs *FS) writeAt(ctx context.Context, ino Inum, off uint64, data []byte) error {
	return fs.writeAtOpts(ctx, ino, off, data, true)
}

// writeAtQuiet stages a write whose data-path costs the caller has
// already billed (see FS.Write).
func (fs *FS) writeAtQuiet(ctx context.Context, ino Inum, off uint64, data []byte) error {
	return fs.writeAtOpts(ctx, ino, off, data, false)
}

func (fs *FS) writeAtOpts(ctx context.Context, ino Inum, off uint64, data []byte, charge bool) error {
	st, err := fs.state(ctx, ino)
	if err != nil {
		return err
	}
	if !st.ino.Allocated() {
		return ErrBadInode
	}
	end := off + uint64(len(data))
	if (end+BlockSize-1)/BlockSize > MaxFileBlocks {
		return ErrFileTooBig
	}
	if err := fs.ensureFmap(ctx, st); err != nil {
		return err
	}
	// Conservative space check: every newly staged block will need an
	// allocation at the next CP (plus tree and map overhead estimated
	// by the caller-visible FreeBlocks slack).
	newBlocks := 0
	for b := off / BlockSize; b*BlockSize < end; b++ {
		if _, ok := st.dirty[uint32(b)]; !ok {
			newBlocks++
		}
	}
	if fs.bmap.freeBlocks()-fs.stagedBlocks < newBlocks+8 {
		return ErrNoSpace
	}
	n := 0
	for n < len(data) {
		fbn := uint32((off + uint64(n)) / BlockSize)
		bo := int((off + uint64(n)) % BlockSize)
		want := len(data) - n
		if want > BlockSize-bo {
			want = BlockSize - bo
		}
		blk, ok := st.dirty[fbn]
		if !ok {
			blk = make([]byte, BlockSize)
			// Partial block write over existing data: read-modify-write.
			if bo != 0 || want != BlockSize {
				if pbn := st.fmap[fbn]; pbn != 0 {
					old, err := fs.readBlock(ctx, pbn)
					if err != nil {
						return err
					}
					copy(blk, old)
				}
			}
			st.dirty[fbn] = blk
			fs.stagedBlocks++
		}
		copy(blk[bo:bo+want], data[n:n+want])
		if charge {
			fs.costs.charge(ctx, fs.costs.WriteBlock+fs.costs.CopyBlock)
		}
		n += want
	}
	if end > st.ino.Size {
		st.ino.Size = end
	}
	st.ino.Mtime = fs.now()
	st.ino.Ctime = st.ino.Mtime
	st.inodeDirty = true
	return nil
}

// truncateTo stages a truncation of ino to size bytes, freeing blocks
// past the new end immediately (they stay frozen until the CP commits).
func (fs *FS) truncateTo(ctx context.Context, ino Inum, size uint64) error {
	st, err := fs.state(ctx, ino)
	if err != nil {
		return err
	}
	if !st.ino.Allocated() {
		return ErrBadInode
	}
	if err := fs.ensureFmap(ctx, st); err != nil {
		return err
	}
	newBlocks := uint32((size + BlockSize - 1) / BlockSize)
	for fbn, pbn := range st.fmap {
		if fbn >= newBlocks {
			fs.bmap.free(pbn)
			fs.cache.drop(pbn)
			delete(st.fmap, fbn)
		}
	}
	for fbn := range st.dirty {
		if fbn >= newBlocks {
			delete(st.dirty, fbn)
			fs.stagedBlocks--
		}
	}
	// Zero the tail of a now-partial last block.
	if size%BlockSize != 0 && size < st.ino.Size {
		fbn := uint32(size / BlockSize)
		cut := int(size % BlockSize)
		blk, ok := st.dirty[fbn]
		if !ok {
			if pbn := st.fmap[fbn]; pbn != 0 {
				old, err := fs.readBlock(ctx, pbn)
				if err != nil {
					return err
				}
				blk = make([]byte, BlockSize)
				copy(blk, old)
				st.dirty[fbn] = blk
				fs.stagedBlocks++
			}
		}
		if blk != nil {
			for i := cut; i < BlockSize; i++ {
				blk[i] = 0
			}
		}
	}
	st.ino.Size = size
	st.ino.Mtime = fs.now()
	st.ino.Ctime = st.ino.Mtime
	st.inodeDirty = true
	st.treeDirty = true
	return nil
}

// freeInode releases ino's data and marks the slot free. The caller is
// responsible for having removed all directory references first.
func (fs *FS) freeInode(ctx context.Context, ino Inum) error {
	st, err := fs.state(ctx, ino)
	if err != nil {
		return err
	}
	if err := fs.ensureFmap(ctx, st); err != nil {
		return err
	}
	for _, pbn := range st.fmap {
		fs.bmap.free(pbn)
		fs.cache.drop(pbn)
	}
	for _, pbn := range st.ptrBlocks {
		fs.bmap.free(pbn)
		fs.cache.drop(pbn)
	}
	fs.stagedBlocks -= len(st.dirty)
	gen := st.ino.Gen
	st.ino = Inode{Gen: gen}
	st.inodeDirty = true
	st.dirty = make(map[uint32][]byte)
	st.fmap = make(map[uint32]BlockNo)
	st.fmapValid = true
	st.ptrBlocks = st.ptrBlocks[:0]
	fs.addFreeIno(ino)
	delete(fs.lastRead, ino)
	return nil
}

// addFreeIno inserts ino into the sorted free list.
func (fs *FS) addFreeIno(ino Inum) {
	i := sort.Search(len(fs.freeInos), func(i int) bool { return fs.freeInos[i] >= ino })
	fs.freeInos = append(fs.freeInos, 0)
	copy(fs.freeInos[i+1:], fs.freeInos[i:])
	fs.freeInos[i] = ino
}
