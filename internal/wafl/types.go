// Package wafl implements a write-anywhere, copy-on-write filesystem
// modelled on the WAFL design described in §2 of the paper:
//
//   - 4 KB blocks, no fragments; inodes describe files; directories are
//     specially formatted files.
//   - Meta-data lives in files: the inode file holds all inodes and the
//     block-map file holds the free-block map, so meta-data blocks can
//     be written anywhere. Only the root structure ("fsinfo", here in
//     blocks 0 and 1, redundantly) has a fixed location.
//   - The block map keeps 32 bits per block: bit 0 for the active
//     filesystem and one bit plane per snapshot. A block is free only
//     when its whole word is zero.
//   - Snapshots are created by duplicating the root structure and
//     copying the active bit plane; they are instant, read-only, and
//     consume space only as the active filesystem diverges.
//   - At consistency points all dirty state is written copy-on-write
//     and a new fsinfo committed; a crash loses at most the operations
//     since the last consistency point, which are replayed from NVRAM.
//
// Both backup strategies of the paper sit on this package: logical
// dump reads files through it; physical (image) dump reads only its
// block map and then bypasses it entirely.
package wafl

import (
	"errors"

	"repro/internal/storage"
)

// Geometry and layout constants.
const (
	// BlockSize is the filesystem block size (4 KB, as in WAFL).
	BlockSize = storage.BlockSize
	// InodeSize is the on-disk size of an inode.
	InodeSize = 128
	// InodesPerBlock is how many inodes fit in one block.
	InodesPerBlock = BlockSize / InodeSize
	// NDirect is the number of direct block pointers per inode.
	NDirect = 12
	// PtrsPerBlock is the number of block pointers per indirect block.
	PtrsPerBlock = BlockSize / 4
	// MaxFileBlocks is the largest file the block tree can map.
	MaxFileBlocks = NDirect + PtrsPerBlock + PtrsPerBlock*PtrsPerBlock
	// MaxSnapshots is the number of snapshot bit planes (paper: 20).
	MaxSnapshots = 20
	// MaxNameLen is the longest directory entry name.
	MaxNameLen = 255
	// RootIno is the inode number of the root directory (inode 2, as
	// in the BSD dump format the paper describes).
	RootIno Inum = 2
	// fsinfoBlockA and fsinfoBlockB are the fixed, redundant locations
	// of the root structure (each copy spans fsinfoSpan blocks).
	fsinfoBlockA = 0
	fsinfoBlockB = fsinfoSpan
)

// Inum is an inode number. 0 is invalid; 1 is reserved; 2 is the root.
type Inum uint32

// BlockNo is a volume block number. 0 is "no block" (a hole); this is
// safe because block 0 always holds fsinfo and never file data.
type BlockNo uint32

// File type bits, Unix-style, stored in the high bits of Mode.
const (
	ModeTypeMask uint32 = 0170000
	ModeDir      uint32 = 0040000
	ModeReg      uint32 = 0100000
	ModeSymlink  uint32 = 0120000
	ModePermMask uint32 = 0007777
)

// Inode flag bits.
const (
	// FlagQtreeRoot marks a directory as the root of a quota tree, the
	// Network Appliance construct used in §5.2 to split a volume into
	// independently dumpable pieces.
	FlagQtreeRoot uint32 = 1 << 0
)

// Errors returned by the filesystem.
var (
	ErrNotFound      = errors.New("wafl: no such file or directory")
	ErrExists        = errors.New("wafl: file exists")
	ErrNotDir        = errors.New("wafl: not a directory")
	ErrIsDir         = errors.New("wafl: is a directory")
	ErrNotEmpty      = errors.New("wafl: directory not empty")
	ErrNoSpace       = errors.New("wafl: no space left on volume")
	ErrNameTooLong   = errors.New("wafl: name too long")
	ErrBadInode      = errors.New("wafl: invalid inode")
	ErrFileTooBig    = errors.New("wafl: file exceeds maximum size")
	ErrSnapExists    = errors.New("wafl: snapshot exists")
	ErrSnapNotFound  = errors.New("wafl: no such snapshot")
	ErrSnapLimit     = errors.New("wafl: snapshot limit reached")
	ErrCorrupt       = errors.New("wafl: filesystem corrupt")
	ErrReadOnly      = errors.New("wafl: read-only view")
	ErrSymlinkLoop   = errors.New("wafl: too many levels of symbolic links")
	ErrCrossed       = errors.New("wafl: replay log does not match filesystem state")
	ErrBadGeneration = errors.New("wafl: generation mismatch")
)

// IsDir reports whether mode describes a directory.
func IsDir(mode uint32) bool { return mode&ModeTypeMask == ModeDir }

// IsReg reports whether mode describes a regular file.
func IsReg(mode uint32) bool { return mode&ModeTypeMask == ModeReg }

// IsSymlink reports whether mode describes a symbolic link.
func IsSymlink(mode uint32) bool { return mode&ModeTypeMask == ModeSymlink }
