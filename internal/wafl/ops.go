package wafl

import (
	"context"
	"fmt"
	"strings"
	"time"
)

// Attr carries the mutable attributes for SetAttr; nil fields are left
// unchanged.
type Attr struct {
	Mode    *uint32 // permission bits only; the type cannot change
	UID     *uint32
	GID     *uint32
	Atime   *int64
	Mtime   *int64
	XMode   *uint32
	Flags   *uint32
	QtreeID *uint32
}

// Create makes a regular file name in directory parent and returns its
// inode number.
func (fs *FS) Create(ctx context.Context, parent Inum, name string, perm uint32, uid, gid uint32) (Inum, error) {
	defer fs.lock(ctx)()
	ino, err := fs.makeNode(ctx, parent, name, ModeReg|perm&ModePermMask, uid, gid, "")
	if err != nil {
		return 0, err
	}
	fs.logCreate(ctx, opCreate, parent, name, ino, ModeReg|perm&ModePermMask, uid, gid, "")
	return ino, fs.maybeCP(ctx)
}

// Mkdir makes a directory name in parent and returns its inode number.
func (fs *FS) Mkdir(ctx context.Context, parent Inum, name string, perm uint32, uid, gid uint32) (Inum, error) {
	defer fs.lock(ctx)()
	ino, err := fs.makeNode(ctx, parent, name, ModeDir|perm&ModePermMask, uid, gid, "")
	if err != nil {
		return 0, err
	}
	fs.logCreate(ctx, opMkdir, parent, name, ino, ModeDir|perm&ModePermMask, uid, gid, "")
	return ino, fs.maybeCP(ctx)
}

// Symlink makes a symbolic link name in parent pointing at target.
func (fs *FS) Symlink(ctx context.Context, parent Inum, name, target string) (Inum, error) {
	defer fs.lock(ctx)()
	ino, err := fs.makeNode(ctx, parent, name, ModeSymlink|0777, 0, 0, target)
	if err != nil {
		return 0, err
	}
	fs.logCreate(ctx, opSymlink, parent, name, ino, ModeSymlink|0777, 0, 0, target)
	return ino, fs.maybeCP(ctx)
}

// makeNode is the shared create path. For symlinks, target is stored
// as file data.
func (fs *FS) makeNode(ctx context.Context, parent Inum, name string, mode uint32, uid, gid uint32, target string) (Inum, error) {
	if err := validName(name); err != nil {
		return 0, err
	}
	fs.costs.charge(ctx, fs.costs.Op)
	pst, err := fs.state(ctx, parent)
	if err != nil {
		return 0, err
	}
	if !IsDir(pst.ino.Mode) {
		return 0, ErrNotDir
	}
	if _, _, err := fs.ActiveView().lookupDir(ctx, parent, name); err == nil {
		return 0, fmt.Errorf("%w: %q", ErrExists, name)
	}
	ino, st, err := fs.allocInode(ctx)
	if err != nil {
		return 0, err
	}
	now := fs.now()
	st.ino.Mode = mode
	st.ino.UID = uid
	st.ino.GID = gid
	st.ino.Nlink = 1
	st.ino.Atime, st.ino.Mtime, st.ino.Ctime = now, now, now
	st.inodeDirty = true

	if IsDir(mode) {
		blk := make([]byte, BlockSize)
		initDirBlock(blk)
		if err := dirInsertInBlock(blk, ".", ino, ModeDir); err != nil {
			return 0, err
		}
		if err := dirInsertInBlock(blk, "..", parent, ModeDir); err != nil {
			return 0, err
		}
		st.ino.Nlink = 2
		st.ino.Size = BlockSize
		st.dirty[0] = blk
		fs.stagedBlocks++
		pst.ino.Nlink++ // the child's ".."
		pst.inodeDirty = true
	}
	if err := fs.dirInsert(ctx, parent, name, ino, mode&ModeTypeMask); err != nil {
		return 0, err
	}
	if target != "" {
		if err := fs.writeAt(ctx, ino, 0, []byte(target)); err != nil {
			return 0, err
		}
	}
	return ino, nil
}

// Write writes data to file ino at offset off.
//
// The data-path costs — per-block CPU and the NVRAM commit — are
// billed before the filesystem lock is taken, so concurrent writers
// (parallel restore streams) overlap on the shared stations the way a
// filer's NFS operations do; only the staging of the mutation itself
// is serialized.
func (fs *FS) Write(ctx context.Context, ino Inum, off uint64, data []byte) error {
	if len(data) > 0 {
		first := off / BlockSize
		last := (off + uint64(len(data)) - 1) / BlockSize
		fs.costs.charge(ctx, time.Duration(last-first+1)*(fs.costs.WriteBlock+fs.costs.CopyBlock))
	}
	fs.logWrite(ctx, ino, off, data)
	defer fs.lock(ctx)()
	st, err := fs.state(ctx, ino)
	if err != nil {
		return err
	}
	if IsDir(st.ino.Mode) {
		return ErrIsDir
	}
	if err := fs.writeAtQuiet(ctx, ino, off, data); err != nil {
		return err
	}
	return fs.maybeCP(ctx)
}

// Truncate sets the size of file ino to size.
func (fs *FS) Truncate(ctx context.Context, ino Inum, size uint64) error {
	defer fs.lock(ctx)()
	st, err := fs.state(ctx, ino)
	if err != nil {
		return err
	}
	if IsDir(st.ino.Mode) {
		return ErrIsDir
	}
	fs.costs.charge(ctx, fs.costs.Op)
	if err := fs.truncateTo(ctx, ino, size); err != nil {
		return err
	}
	fs.logTruncate(ctx, ino, size)
	return fs.maybeCP(ctx)
}

// Remove deletes the non-directory entry name from parent.
func (fs *FS) Remove(ctx context.Context, parent Inum, name string) error {
	defer fs.lock(ctx)()
	fs.costs.charge(ctx, fs.costs.Op)
	ino, _, err := fs.ActiveView().lookupDir(ctx, parent, name)
	if err != nil {
		return err
	}
	st, err := fs.state(ctx, ino)
	if err != nil {
		return err
	}
	if IsDir(st.ino.Mode) {
		return ErrIsDir
	}
	if _, err := fs.dirRemove(ctx, parent, name); err != nil {
		return err
	}
	st.ino.Nlink--
	st.ino.Ctime = fs.now()
	st.inodeDirty = true
	if st.ino.Nlink == 0 {
		if err := fs.freeInode(ctx, ino); err != nil {
			return err
		}
	}
	fs.logNameOp(ctx, opRemove, parent, name)
	return fs.maybeCP(ctx)
}

// Rmdir deletes the empty directory name from parent.
func (fs *FS) Rmdir(ctx context.Context, parent Inum, name string) error {
	defer fs.lock(ctx)()
	fs.costs.charge(ctx, fs.costs.Op)
	if name == "." || name == ".." {
		return fmt.Errorf("%w: cannot remove %q", ErrExists, name)
	}
	ino, _, err := fs.ActiveView().lookupDir(ctx, parent, name)
	if err != nil {
		return err
	}
	st, err := fs.state(ctx, ino)
	if err != nil {
		return err
	}
	if !IsDir(st.ino.Mode) {
		return ErrNotDir
	}
	empty, err := fs.ActiveView().dirIsEmpty(ctx, ino)
	if err != nil {
		return err
	}
	if !empty {
		return ErrNotEmpty
	}
	if _, err := fs.dirRemove(ctx, parent, name); err != nil {
		return err
	}
	if err := fs.freeInode(ctx, ino); err != nil {
		return err
	}
	pst, err := fs.state(ctx, parent)
	if err != nil {
		return err
	}
	pst.ino.Nlink-- // the child's ".." is gone
	pst.ino.Mtime = fs.now()
	pst.inodeDirty = true
	fs.logNameOp(ctx, opRmdir, parent, name)
	return fs.maybeCP(ctx)
}

// Link makes a hard link to file ino as name in directory parent.
func (fs *FS) Link(ctx context.Context, ino, parent Inum, name string) error {
	defer fs.lock(ctx)()
	if err := validName(name); err != nil {
		return err
	}
	fs.costs.charge(ctx, fs.costs.Op)
	st, err := fs.state(ctx, ino)
	if err != nil {
		return err
	}
	if !st.ino.Allocated() {
		return ErrBadInode
	}
	if IsDir(st.ino.Mode) {
		return ErrIsDir
	}
	if _, _, err := fs.ActiveView().lookupDir(ctx, parent, name); err == nil {
		return fmt.Errorf("%w: %q", ErrExists, name)
	}
	if err := fs.dirInsert(ctx, parent, name, ino, st.ino.Mode&ModeTypeMask); err != nil {
		return err
	}
	st.ino.Nlink++
	st.ino.Ctime = fs.now()
	st.inodeDirty = true
	fs.logLink(ctx, ino, parent, name)
	return fs.maybeCP(ctx)
}

// Rename moves srcName in srcDir to dstName in dstDir, replacing a
// non-directory destination if present.
func (fs *FS) Rename(ctx context.Context, srcDir Inum, srcName string, dstDir Inum, dstName string) error {
	defer fs.lock(ctx)()
	if err := validName(dstName); err != nil {
		return err
	}
	fs.costs.charge(ctx, fs.costs.Op)
	ino, ftype, err := fs.ActiveView().lookupDir(ctx, srcDir, srcName)
	if err != nil {
		return err
	}
	// Replace an existing destination.
	if old, _, err := fs.ActiveView().lookupDir(ctx, dstDir, dstName); err == nil {
		if old == ino {
			return nil
		}
		ost, err := fs.state(ctx, old)
		if err != nil {
			return err
		}
		if IsDir(ost.ino.Mode) {
			return ErrIsDir
		}
		if err := fs.Remove(ctx, dstDir, dstName); err != nil {
			return err
		}
	}
	if _, err := fs.dirRemove(ctx, srcDir, srcName); err != nil {
		return err
	}
	if err := fs.dirInsert(ctx, dstDir, dstName, ino, ftype); err != nil {
		return err
	}
	// Bump the moved inode's ctime (Linux semantics). Incremental dump
	// depends on this: a renamed file must look changed so the next
	// incremental carries it under its new name.
	mst, err := fs.state(ctx, ino)
	if err != nil {
		return err
	}
	mst.ino.Ctime = fs.now()
	mst.inodeDirty = true
	// Moving a directory across parents rewires "..".
	if ftype == ModeDir && srcDir != dstDir {
		st, err := fs.state(ctx, ino)
		if err != nil {
			return err
		}
		blk := make([]byte, BlockSize)
		if _, err := fs.readAt(ctx, ino, 0, blk); err != nil {
			return err
		}
		dirRemoveFromBlock(blk, "..")
		if err := dirInsertInBlock(blk, "..", dstDir, ModeDir); err != nil {
			return err
		}
		if err := fs.writeAt(ctx, ino, 0, blk); err != nil {
			return err
		}
		sst, err := fs.state(ctx, srcDir)
		if err != nil {
			return err
		}
		sst.ino.Nlink--
		sst.inodeDirty = true
		dst, err := fs.state(ctx, dstDir)
		if err != nil {
			return err
		}
		dst.ino.Nlink++
		dst.inodeDirty = true
		_ = st
	}
	fs.logRename(ctx, srcDir, srcName, dstDir, dstName)
	return fs.maybeCP(ctx)
}

// SetAttr updates attributes of ino.
func (fs *FS) SetAttr(ctx context.Context, ino Inum, attr Attr) error {
	defer fs.lock(ctx)()
	fs.costs.charge(ctx, fs.costs.Op)
	st, err := fs.state(ctx, ino)
	if err != nil {
		return err
	}
	if !st.ino.Allocated() {
		return ErrBadInode
	}
	applyAttr(&st.ino, attr)
	st.ino.Ctime = fs.now()
	st.inodeDirty = true
	fs.logSetAttr(ctx, ino, attr)
	return fs.maybeCP(ctx)
}

func applyAttr(ino *Inode, attr Attr) {
	if attr.Mode != nil {
		ino.Mode = ino.Mode&ModeTypeMask | *attr.Mode&ModePermMask
	}
	if attr.UID != nil {
		ino.UID = *attr.UID
	}
	if attr.GID != nil {
		ino.GID = *attr.GID
	}
	if attr.Atime != nil {
		ino.Atime = *attr.Atime
	}
	if attr.Mtime != nil {
		ino.Mtime = *attr.Mtime
	}
	if attr.XMode != nil {
		ino.XMode = *attr.XMode
	}
	if attr.Flags != nil {
		ino.Flags = *attr.Flags
	}
	if attr.QtreeID != nil {
		ino.QtreeID = *attr.QtreeID
	}
}

// SetQtreeRoot marks directory ino as the root of quota tree id.
func (fs *FS) SetQtreeRoot(ctx context.Context, ino Inum, id uint32) error {
	flags := FlagQtreeRoot
	return fs.SetAttr(ctx, ino, Attr{Flags: &flags, QtreeID: &id})
}

func validName(name string) error {
	if name == "" || name == "." || name == ".." {
		return fmt.Errorf("%w: invalid name %q", ErrExists, name)
	}
	if len(name) > MaxNameLen {
		return ErrNameTooLong
	}
	if strings.ContainsRune(name, '/') {
		return fmt.Errorf("wafl: name %q contains '/'", name)
	}
	return nil
}

// --- Path-based conveniences, used by examples and the workload
// generator. Paths are slash-separated from the root.

// MkdirAll creates every missing directory along path and returns the
// final directory's inode.
func (fs *FS) MkdirAll(ctx context.Context, path string, perm uint32) (Inum, error) {
	cur := RootIno
	for _, c := range SplitPath(path) {
		next, _, err := fs.ActiveView().lookupDir(ctx, cur, c)
		switch {
		case err == nil:
			ino, err := fs.GetInode(ctx, next)
			if err != nil {
				return 0, err
			}
			if !IsDir(ino.Mode) {
				return 0, ErrNotDir
			}
			cur = next
		case strings.Contains(err.Error(), ErrNotFound.Error()):
			next, err = fs.Mkdir(ctx, cur, c, perm, 0, 0)
			if err != nil {
				return 0, err
			}
			cur = next
		default:
			return 0, err
		}
	}
	return cur, nil
}

// WriteFile creates (or truncates) the file at path with data.
func (fs *FS) WriteFile(ctx context.Context, path string, data []byte, perm uint32) (Inum, error) {
	comps := SplitPath(path)
	if len(comps) == 0 {
		return 0, ErrIsDir
	}
	dir, err := fs.MkdirAll(ctx, strings.Join(comps[:len(comps)-1], "/"), 0755)
	if err != nil {
		return 0, err
	}
	name := comps[len(comps)-1]
	ino, _, err := fs.ActiveView().lookupDir(ctx, dir, name)
	if err != nil {
		ino, err = fs.Create(ctx, dir, name, perm, 0, 0)
		if err != nil {
			return 0, err
		}
	} else if err := fs.Truncate(ctx, ino, 0); err != nil {
		return 0, err
	}
	if len(data) > 0 {
		if err := fs.Write(ctx, ino, 0, data); err != nil {
			return 0, err
		}
	}
	return ino, nil
}

// RemovePath removes the file or empty directory at path.
func (fs *FS) RemovePath(ctx context.Context, path string) error {
	comps := SplitPath(path)
	if len(comps) == 0 {
		return ErrIsDir
	}
	dir, err := fs.ActiveView().Namei(ctx, strings.Join(comps[:len(comps)-1], "/"))
	if err != nil {
		return err
	}
	name := comps[len(comps)-1]
	ino, _, err := fs.ActiveView().lookupDir(ctx, dir, name)
	if err != nil {
		return err
	}
	inode, err := fs.GetInode(ctx, ino)
	if err != nil {
		return err
	}
	if IsDir(inode.Mode) {
		return fs.Rmdir(ctx, dir, name)
	}
	return fs.Remove(ctx, dir, name)
}
