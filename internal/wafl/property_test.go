package wafl

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/nvram"
	"repro/internal/storage"
)

func TestInodeMarshalRoundTripProperty(t *testing.T) {
	f := func(mode, nlink, uid, gid, gen, flags, qtree, xmode uint32, size uint64, at, mt, ct int64, d0, d5, d11, ind, dbl uint32) bool {
		in := Inode{
			Mode: mode, Nlink: nlink, UID: uid, GID: gid, Size: size,
			Atime: at, Mtime: mt, Ctime: ct, Gen: gen, Flags: flags,
			QtreeID: qtree, XMode: xmode,
			Indirect: BlockNo(ind), DblInd: BlockNo(dbl),
		}
		in.Direct[0] = BlockNo(d0)
		in.Direct[5] = BlockNo(d5)
		in.Direct[11] = BlockNo(d11)
		buf := make([]byte, InodeSize)
		in.Marshal(buf)
		out := UnmarshalInode(buf)
		return in == out
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFsinfoMarshalRoundTripProperty(t *testing.T) {
	f := func(gen uint64, cp int64, nb, ni uint64, snapID uint32, name string) bool {
		if len(name) > 32 {
			name = name[:32]
		}
		// NUL bytes truncate names on decode by design; avoid them here.
		clean := make([]byte, 0, len(name))
		for _, c := range []byte(name) {
			if c != 0 {
				clean = append(clean, c)
			}
		}
		info := fsinfo{Gen: gen, CPTime: cp, NBlocks: nb, NInodes: ni}
		info.InodeFile.Size = ni * InodeSize
		info.Snaps[3] = SnapEntry{ID: snapID%20 + 1, CreatedAt: cp, Name: string(clean)}
		buf := marshalFsinfo(&info)
		out, err := unmarshalFsinfo(buf)
		if err != nil {
			return false
		}
		return out.Gen == gen && out.CPTime == cp && out.NBlocks == nb &&
			out.Snaps[3].Name == string(clean) && out.Snaps[3].ID == snapID%20+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFsinfoRejectsCorruption(t *testing.T) {
	info := fsinfo{Gen: 7, NBlocks: 100}
	buf := marshalFsinfo(&info)
	for _, off := range []int{0, 10, 100, 2000, len(buf) - 1} {
		bad := make([]byte, len(buf))
		copy(bad, buf)
		bad[off] ^= 0x40
		if _, err := unmarshalFsinfo(bad); !errors.Is(err, ErrCorrupt) {
			t.Errorf("flip at %d: err = %v, want ErrCorrupt", off, err)
		}
	}
	// Wrong length is rejected outright.
	if _, err := unmarshalFsinfo(buf[:BlockSize]); !errors.Is(err, ErrCorrupt) {
		t.Errorf("short fsinfo err = %v, want ErrCorrupt", err)
	}
}

func TestDirBlockInsertRemoveProperty(t *testing.T) {
	// Insert up to N random names, remove a random subset, verify the
	// survivors are exactly what a scan finds, at every step.
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		blk := make([]byte, BlockSize)
		initDirBlock(blk)
		want := make(map[string]Inum)
		for op := 0; op < 200; op++ {
			if r.Intn(3) != 0 || len(want) == 0 {
				name := fmt.Sprintf("n%d-%d", trial, r.Intn(100))
				if _, ok := want[name]; ok {
					continue
				}
				ino := Inum(r.Intn(1 << 20))
				if ino == 0 {
					ino = 1
				}
				if err := dirInsertInBlock(blk, name, ino, ModeReg); err == ErrNoSpace {
					continue
				} else if err != nil {
					t.Fatal(err)
				}
				want[name] = ino
			} else {
				// Remove a random present name.
				for name := range want {
					if _, ok := dirRemoveFromBlock(blk, name); !ok {
						t.Fatalf("remove of present name %q failed", name)
					}
					delete(want, name)
					break
				}
			}
			got := make(map[string]Inum)
			err := dirForEach(blk, func(off int, ino Inum, reclen int, ftype uint32, name string) bool {
				if ino != 0 {
					got[name] = ino
				}
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("scan found %d entries, want %d", len(got), len(want))
			}
			for n, i := range want {
				if got[n] != i {
					t.Fatalf("entry %q = %d, want %d", n, got[n], i)
				}
			}
		}
	}
}

func TestDirBlockCoalescing(t *testing.T) {
	// Fill a block with small names, remove them all, then a long name
	// must fit: free records must coalesce.
	blk := make([]byte, BlockSize)
	initDirBlock(blk)
	var names []string
	for i := 0; ; i++ {
		name := fmt.Sprintf("s%03d", i)
		if err := dirInsertInBlock(blk, name, Inum(i+10), ModeReg); err != nil {
			break
		}
		names = append(names, name)
	}
	if len(names) < 100 {
		t.Fatalf("only %d small names fit", len(names))
	}
	for _, n := range names {
		dirRemoveFromBlock(blk, n)
	}
	long := make([]byte, 200)
	for i := range long {
		long[i] = 'x'
	}
	if err := dirInsertInBlock(blk, string(long), 5, ModeReg); err != nil {
		t.Fatalf("long name after freeing everything: %v", err)
	}
}

// TestRandomOpsAgainstModel drives the filesystem with a random
// operation sequence and checks it against a flat in-memory model,
// including across consistency points, snapshots and a crash+replay.
func TestRandomOpsAgainstModel(t *testing.T) {
	const files = 24
	r := rand.New(rand.NewSource(1234))
	dev := storage.NewMemDevice(8192)
	log := newTestLog()
	fs, err := Mkfs(ctx, dev, log, Options{})
	if err != nil {
		t.Fatal(err)
	}
	model := make(map[string][]byte)
	name := func(i int) string { return fmt.Sprintf("/dir%d/f%d", i%4, i) }

	verify := func(f *FS, stage string) {
		t.Helper()
		for i := 0; i < files; i++ {
			p := name(i)
			want, exists := model[p]
			got, err := f.ActiveView().ReadFile(ctx, p)
			if exists {
				if err != nil {
					t.Fatalf("%s: %s: %v", stage, p, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("%s: %s content mismatch (%d vs %d bytes)", stage, p, len(got), len(want))
				}
			} else if !errors.Is(err, ErrNotFound) {
				t.Fatalf("%s: %s should be absent, err = %v", stage, p, err)
			}
		}
	}

	for step := 0; step < 400; step++ {
		i := r.Intn(files)
		p := name(i)
		switch r.Intn(10) {
		case 0, 1, 2, 3: // write/overwrite
			data := randBytes(r.Int63(), r.Intn(6*BlockSize)+1)
			if _, err := fs.WriteFile(ctx, p, data, 0644); err != nil {
				t.Fatalf("step %d write %s: %v", step, p, err)
			}
			model[p] = data
		case 4, 5: // append
			if _, ok := model[p]; !ok {
				continue
			}
			extra := randBytes(r.Int63(), r.Intn(BlockSize)+1)
			ino, err := fs.ActiveView().Namei(ctx, p)
			if err != nil {
				t.Fatal(err)
			}
			if err := fs.Write(ctx, ino, uint64(len(model[p])), extra); err != nil {
				t.Fatal(err)
			}
			model[p] = append(model[p], extra...)
		case 6: // truncate
			if _, ok := model[p]; !ok {
				continue
			}
			nl := r.Intn(len(model[p]) + 1)
			ino, _ := fs.ActiveView().Namei(ctx, p)
			if err := fs.Truncate(ctx, ino, uint64(nl)); err != nil {
				t.Fatal(err)
			}
			model[p] = model[p][:nl]
		case 7: // remove
			if _, ok := model[p]; !ok {
				continue
			}
			if err := fs.RemovePath(ctx, p); err != nil {
				t.Fatal(err)
			}
			delete(model, p)
		case 8: // consistency point
			if err := fs.CP(ctx); err != nil {
				t.Fatal(err)
			}
		case 9: // crash and recover via NVRAM
			fs.Crash()
			fs, err = Mount(ctx, dev, log, Options{})
			if err != nil {
				t.Fatalf("step %d remount: %v", step, err)
			}
			verify(fs, fmt.Sprintf("step %d post-crash", step))
		}
	}
	verify(fs, "final")
	check(t, fs)
}

// newTestLog builds an NVRAM log big enough that the test controls CP
// timing mostly itself, while auto-CP still fires under heavy load.
func newTestLog() *nvram.Log {
	return nvram.New(nil, nvram.Params{Size: 4 << 20})
}
