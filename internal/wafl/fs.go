package wafl

import (
	"context"
	"fmt"
	"time"

	"repro/internal/nvram"
	"repro/internal/sim"
	"repro/internal/storage"
)

// Prefetcher is implemented by devices that support asynchronous
// read-ahead (the RAID volume and the simulated disks).
type Prefetcher interface {
	Prefetch(ctx context.Context, bno int)
}

// Options configures a filesystem instance. The zero value gets
// sensible defaults from applyDefaults.
type Options struct {
	// CacheBlocks is the buffer-cache size in blocks.
	CacheBlocks int
	// ReadAhead is how many blocks ahead the filesystem prefetches on
	// sequential file reads; 0 disables read-ahead.
	ReadAhead int
	// Costs is the CPU cost model.
	Costs Costs
	// CPInterval is the consistency-point cadence on the virtual clock
	// (paper §2.2: "at least once every 10 seconds").
	CPInterval time.Duration
	// Env is the simulation environment, used only as the filesystem's
	// time source; nil falls back to a deterministic logical clock.
	Env *sim.Env
}

func (o Options) applyDefaults() Options {
	if o.CacheBlocks == 0 {
		o.CacheBlocks = 2048
	}
	if o.ReadAhead == 0 {
		o.ReadAhead = 8
	}
	if o.CPInterval == 0 {
		o.CPInterval = 10 * time.Second
	}
	return o
}

// istate is the staged (since the last consistency point) state of one
// inode: its current metadata, dirty data blocks, and — once the file
// has been modified — the complete fbn→pbn mapping of its block tree.
type istate struct {
	ino        Inode
	inodeDirty bool
	treeDirty  bool              // mapping changed (truncate) even with no dirty data
	dirty      map[uint32][]byte // fbn → staged contents
	fmap       map[uint32]BlockNo
	fmapValid  bool
	ptrBlocks  []BlockNo // pointer blocks of the current on-disk tree
}

// FS is a mounted filesystem.
type FS struct {
	dev   storage.Device
	pref  Prefetcher // dev, if it supports prefetch
	log   *nvram.Log // may be nil (no operation logging)
	opts  Options
	costs Costs
	cache *blockCache

	info fsinfo
	bmap *blkmap

	states   map[Inum]*istate
	inofSt   *istate // the inode file (rooted in fsinfo)
	freeInos []Inum
	nextIno  Inum

	stagedBlocks int       // staged-but-unallocated dirty blocks, for ENOSPC
	owner        *sim.Proc // simulated process holding the FS lock
	replaying    bool      // true while replaying the NVRAM log
	noLog        bool      // NVRAM logging disabled (see SetNVRAMLogging)
	lastCPAt     sim.Time
	logical      int64 // fallback logical clock
	lastRead     map[Inum]uint32

	cpCount int64
}

// lock serializes compound mutations against each other and against
// consistency points when several simulated processes share the
// filesystem (parallel restores, concurrent dumps with auto-CP). The
// discrete-event scheduler interleaves processes at every device wait,
// so without this a consistency point could observe another
// operation's half-staged state — real WAFL serializes operations
// against the CP the same way. The lock is recursive per process
// (maybeCP runs under its caller's lock) and free for untimed callers,
// which are single-threaded by construction.
func (fs *FS) lock(ctx context.Context) func() {
	p := sim.ProcFrom(ctx)
	if p == nil || fs.owner == p {
		return func() {}
	}
	for fs.owner != nil {
		p.Sleep(50 * time.Microsecond)
	}
	fs.owner = p
	return func() { fs.owner = nil }
}

// now returns the filesystem's notion of the current time in unix
// nanoseconds: the virtual clock when simulated, otherwise a strictly
// monotonic logical counter (deterministic for tests).
func (fs *FS) now() int64 {
	if fs.opts.Env != nil {
		if t := int64(fs.opts.Env.Now()); t > fs.logical {
			fs.logical = t
		}
	}
	fs.logical++
	return fs.logical
}

// SetNVRAMLogging turns operation logging on or off — the knob behind
// the paper's footnote 2: logical restore "goes through ... NVRAM",
// though "there is no inherent need" since an interrupted restore can
// simply be restarted from tape. With logging off, a crash loses
// everything since the last consistency point.
func (fs *FS) SetNVRAMLogging(on bool) { fs.noLog = !on }

// Clock returns the current filesystem time; dump uses it to stamp
// dump dates consistently with file mtimes.
func (fs *FS) Clock() int64 {
	if fs.opts.Env != nil && int64(fs.opts.Env.Now()) > fs.logical {
		return int64(fs.opts.Env.Now())
	}
	return fs.logical
}

// Device returns the underlying volume. Image dump reads through this,
// bypassing the filesystem (paper §4.1).
func (fs *FS) Device() storage.Device { return fs.dev }

// Generation returns the consistency-point generation number.
func (fs *FS) Generation() uint64 { return fs.info.Gen }

// NumBlocks returns the volume size in blocks.
func (fs *FS) NumBlocks() int { return int(fs.info.NBlocks) }

// NumInodes returns the inode-file capacity in inodes.
func (fs *FS) NumInodes() uint64 { return uint64(fs.nextIno) }

// FreeBlocks returns the number of currently allocatable blocks.
func (fs *FS) FreeBlocks() int { return fs.bmap.freeBlocks() - fs.stagedBlocks }

// UsedBlocks returns the number of blocks in the active filesystem.
func (fs *FS) UsedBlocks() int { return fs.bmap.countPlane(ActiveBit) }

// CPCount returns how many consistency points have committed since
// mount, for tests and statistics.
func (fs *FS) CPCount() int64 { return fs.cpCount }

// CacheStats returns buffer-cache hits and misses.
func (fs *FS) CacheStats() (hits, misses int64) { return fs.cache.stats() }

// BlockMapWord returns the 32-bit block-map word for block b: bit 0 is
// the active filesystem, bit s the snapshot with id s. Image dump reads
// the map through this accessor and nothing else of the filesystem.
func (fs *FS) BlockMapWord(b BlockNo) uint32 {
	if int(b) >= len(fs.bmap.words) {
		return 0
	}
	return fs.bmap.words[b]
}

// Mkfs formats dev and returns a mounted, empty filesystem with a root
// directory, committing an initial consistency point.
func Mkfs(ctx context.Context, dev storage.Device, log *nvram.Log, opts Options) (*FS, error) {
	opts = opts.applyDefaults()
	if dev.NumBlocks() < 16 {
		return nil, fmt.Errorf("wafl: volume too small (%d blocks)", dev.NumBlocks())
	}
	fs := &FS{
		dev:      dev,
		log:      log,
		opts:     opts,
		costs:    opts.Costs,
		cache:    newBlockCache(opts.CacheBlocks),
		bmap:     newBlkmap(dev.NumBlocks()),
		states:   make(map[Inum]*istate),
		nextIno:  RootIno + 1,
		lastRead: make(map[Inum]uint32),
	}
	if p, ok := dev.(Prefetcher); ok {
		fs.pref = p
	}
	fs.info.NBlocks = uint64(dev.NumBlocks())
	for b := BlockNo(0); b < fsinfoReserved; b++ {
		fs.bmap.setActive(b)
	}
	fs.bmap.cursor = fsinfoReserved
	fs.inofSt = &istate{
		dirty:     make(map[uint32][]byte),
		fmap:      make(map[uint32]BlockNo),
		fmapValid: true,
	}
	fs.inofSt.ino.Mode = ModeReg

	// Root directory with "." and "..".
	now := fs.now()
	root := &istate{
		ino: Inode{
			Mode: ModeDir | 0755, Nlink: 2, Size: BlockSize,
			Atime: now, Mtime: now, Ctime: now, Gen: 1,
		},
		inodeDirty: true,
		dirty:      make(map[uint32][]byte),
		fmap:       make(map[uint32]BlockNo),
		fmapValid:  true,
	}
	blk := make([]byte, BlockSize)
	initDirBlock(blk)
	if err := dirInsertInBlock(blk, ".", RootIno, ModeDir); err != nil {
		return nil, err
	}
	if err := dirInsertInBlock(blk, "..", RootIno, ModeDir); err != nil {
		return nil, err
	}
	root.dirty[0] = blk
	fs.states[RootIno] = root
	fs.stagedBlocks = 1

	if err := fs.CP(ctx); err != nil {
		return nil, err
	}
	return fs, nil
}

// Mount reads the root structure from dev and returns a mounted
// filesystem. If the NVRAM log contains uncommitted operations (a
// crash happened), they are replayed, exactly as the paper's filer
// does at boot (§2.2).
func Mount(ctx context.Context, dev storage.Device, log *nvram.Log, opts Options) (*FS, error) {
	opts = opts.applyDefaults()
	fs := &FS{
		dev:      dev,
		log:      log,
		opts:     opts,
		costs:    opts.Costs,
		cache:    newBlockCache(opts.CacheBlocks),
		states:   make(map[Inum]*istate),
		lastRead: make(map[Inum]uint32),
	}
	if p, ok := dev.(Prefetcher); ok {
		fs.pref = p
	}
	info, err := fs.readFsinfo(ctx)
	if err != nil {
		return nil, err
	}
	fs.info = *info
	if fs.info.NBlocks != uint64(dev.NumBlocks()) {
		return nil, fmt.Errorf("%w: fsinfo says %d blocks, device has %d",
			ErrCorrupt, fs.info.NBlocks, dev.NumBlocks())
	}
	fs.nextIno = Inum(fs.info.NInodes)
	if fs.nextIno < RootIno+1 {
		fs.nextIno = RootIno + 1
	}
	// Resume the logical clock from the last consistency point so
	// timestamps — and the incremental-dump mtime comparisons that
	// depend on them — stay monotonic across mounts.
	fs.logical = fs.info.CPTime

	// Load the block map by walking the block-map file.
	fs.bmap = newBlkmap(int(fs.info.NBlocks))
	nWords := int(fs.info.NBlocks)
	nBlks := (nWords + PtrsPerBlock - 1) / PtrsPerBlock
	for fbn := 0; fbn < nBlks; fbn++ {
		pbn, err := fs.walkTree(ctx, &fs.info.BlkmapFile, uint32(fbn))
		if err != nil {
			return nil, err
		}
		if pbn == 0 {
			return nil, fmt.Errorf("%w: hole in block-map file at fbn %d", ErrCorrupt, fbn)
		}
		data, err := fs.readBlock(ctx, pbn)
		if err != nil {
			return nil, err
		}
		for i := 0; i < PtrsPerBlock && fbn*PtrsPerBlock+i < nWords; i++ {
			fs.bmap.words[fbn*PtrsPerBlock+i] = leU32(data[4*i:])
		}
	}
	fs.bmap.refreeze()
	fs.bmap.cursor = fsinfoReserved

	fs.inofSt = &istate{dirty: make(map[uint32][]byte)}
	fs.inofSt.ino = fs.info.InodeFile

	// Scan the inode file for free slots.
	for i := RootIno + 1; i < fs.nextIno; i++ {
		ino, err := fs.readInodeRaw(ctx, i)
		if err != nil {
			return nil, err
		}
		if !ino.Allocated() {
			fs.freeInos = append(fs.freeInos, i)
		}
	}

	// Replay any uncommitted operations from NVRAM.
	if log != nil {
		entries := log.Entries()
		if len(entries) > 0 {
			fs.replaying = true
			err := fs.replay(ctx, entries)
			fs.replaying = false
			if err != nil {
				return nil, err
			}
		}
	}
	return fs, nil
}

// readFsinfo reads and validates the root structure, preferring copy A
// and falling back to copy B, as the redundant fixed-location root of
// the paper requires.
func (fs *FS) readFsinfo(ctx context.Context) (*fsinfo, error) {
	read := func(start int) (*fsinfo, error) {
		buf := make([]byte, fsinfoSpan*BlockSize)
		for i := 0; i < fsinfoSpan; i++ {
			if err := fs.dev.ReadBlock(ctx, start+i, buf[i*BlockSize:(i+1)*BlockSize]); err != nil {
				return nil, err
			}
		}
		return unmarshalFsinfo(buf)
	}
	if info, err := read(fsinfoBlockA); err == nil {
		return info, nil
	}
	return read(fsinfoBlockB)
}

// readBlock reads a physical block through the buffer cache. The
// returned slice is cache-owned: callers must not modify it.
func (fs *FS) readBlock(ctx context.Context, pbn BlockNo) ([]byte, error) {
	if data := fs.cache.get(pbn); data != nil {
		return data, nil
	}
	buf := make([]byte, BlockSize)
	if err := fs.dev.ReadBlock(ctx, int(pbn), buf); err != nil {
		return nil, err
	}
	fs.cache.put(pbn, buf)
	return buf, nil
}

// writeBlock writes a physical block and updates the cache.
func (fs *FS) writeBlock(ctx context.Context, pbn BlockNo, data []byte) error {
	if err := fs.dev.WriteBlock(ctx, int(pbn), data); err != nil {
		return err
	}
	fs.cache.put(pbn, data)
	return nil
}

// walkTree resolves file block fbn of ino through the direct, single-
// and double-indirect pointers, returning 0 for holes.
func (fs *FS) walkTree(ctx context.Context, ino *Inode, fbn uint32) (BlockNo, error) {
	if fbn < NDirect {
		return ino.Direct[fbn], nil
	}
	fbn -= NDirect
	if fbn < PtrsPerBlock {
		if ino.Indirect == 0 {
			return 0, nil
		}
		blk, err := fs.readBlock(ctx, ino.Indirect)
		if err != nil {
			return 0, err
		}
		return BlockNo(leU32(blk[4*fbn:])), nil
	}
	fbn -= PtrsPerBlock
	if fbn >= PtrsPerBlock*PtrsPerBlock {
		return 0, ErrFileTooBig
	}
	if ino.DblInd == 0 {
		return 0, nil
	}
	l1, err := fs.readBlock(ctx, ino.DblInd)
	if err != nil {
		return 0, err
	}
	l2pbn := BlockNo(leU32(l1[4*(fbn/PtrsPerBlock):]))
	if l2pbn == 0 {
		return 0, nil
	}
	l2, err := fs.readBlock(ctx, l2pbn)
	if err != nil {
		return 0, err
	}
	return BlockNo(leU32(l2[4*(fbn%PtrsPerBlock):])), nil
}

// treeBlocks walks ino's whole tree, calling data for each mapped data
// block and ptr for each pointer block. Either callback may be nil.
func (fs *FS) treeBlocks(ctx context.Context, ino *Inode, data func(fbn uint32, pbn BlockNo), ptr func(pbn BlockNo)) error {
	for i, p := range ino.Direct {
		if p != 0 && data != nil {
			data(uint32(i), p)
		}
	}
	if ino.Indirect != 0 {
		if ptr != nil {
			ptr(ino.Indirect)
		}
		blk, err := fs.readBlock(ctx, ino.Indirect)
		if err != nil {
			return err
		}
		for i := 0; i < PtrsPerBlock; i++ {
			if p := BlockNo(leU32(blk[4*i:])); p != 0 && data != nil {
				data(NDirect+uint32(i), p)
			}
		}
	}
	if ino.DblInd != 0 {
		if ptr != nil {
			ptr(ino.DblInd)
		}
		l1, err := fs.readBlock(ctx, ino.DblInd)
		if err != nil {
			return err
		}
		for i := 0; i < PtrsPerBlock; i++ {
			l2pbn := BlockNo(leU32(l1[4*i:]))
			if l2pbn == 0 {
				continue
			}
			if ptr != nil {
				ptr(l2pbn)
			}
			l2, err := fs.readBlock(ctx, l2pbn)
			if err != nil {
				return err
			}
			for j := 0; j < PtrsPerBlock; j++ {
				if p := BlockNo(leU32(l2[4*j:])); p != 0 && data != nil {
					data(NDirect+PtrsPerBlock+uint32(i*PtrsPerBlock+j), p)
				}
			}
		}
	}
	return nil
}

func leU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}
