package wafl

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/nvram"
	"repro/internal/storage"
)

var ctx = context.Background()

func newFS(t *testing.T, blocks int) *FS {
	t.Helper()
	dev := storage.NewMemDevice(blocks)
	fs, err := Mkfs(ctx, dev, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func check(t *testing.T, fs *FS) {
	t.Helper()
	problems, err := fs.Check(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Errorf("fsck: %s", p)
	}
	if t.Failed() {
		t.FailNow()
	}
}

func randBytes(seed int64, n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func TestMkfsIsConsistent(t *testing.T) {
	fs := newFS(t, 512)
	check(t, fs)
	ents, err := fs.ActiveView().Readdir(ctx, RootIno)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 || ents[0].Name != "." || ents[1].Name != ".." {
		t.Fatalf("root entries = %v, want . and ..", ents)
	}
}

func TestCreateWriteRead(t *testing.T) {
	fs := newFS(t, 512)
	ino, err := fs.Create(ctx, RootIno, "hello.txt", 0644, 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("hello, wafl")
	if err := fs.Write(ctx, ino, 0, data); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ActiveView().ReadFile(ctx, "hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read %q, want %q", got, data)
	}
	st, err := fs.ActiveView().Stat(ctx, "hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	if st.UID != 10 || st.GID != 20 || st.Mode != ModeReg|0644 {
		t.Fatalf("stat = %+v", st)
	}
	check(t, fs)
}

func TestReadAcrossCP(t *testing.T) {
	fs := newFS(t, 512)
	data := randBytes(1, 3*BlockSize+100)
	ino, _ := fs.WriteFile(ctx, "/f", data, 0644)
	if err := fs.CP(ctx); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	if _, err := fs.ActiveView().ReadAt(ctx, ino, 0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("data changed across CP")
	}
	check(t, fs)
}

func TestLargeFileIndirect(t *testing.T) {
	// Spans direct + indirect blocks: > 12 blocks.
	fs := newFS(t, 2048)
	data := randBytes(2, 40*BlockSize)
	if _, err := fs.WriteFile(ctx, "/big", data, 0644); err != nil {
		t.Fatal(err)
	}
	check(t, fs)
	got, err := fs.ActiveView().ReadFile(ctx, "/big")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("indirect file corrupted")
	}
}

func TestHugeFileDoubleIndirect(t *testing.T) {
	// Spans into the double-indirect range: > 12 + 1024 blocks.
	fs := newFS(t, 4096)
	n := (NDirect + PtrsPerBlock + 50) * BlockSize
	data := randBytes(3, n)
	if _, err := fs.WriteFile(ctx, "/huge", data, 0644); err != nil {
		t.Fatal(err)
	}
	check(t, fs)
	got, err := fs.ActiveView().ReadFile(ctx, "/huge")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("double-indirect file corrupted")
	}
}

func TestSparseFileHoles(t *testing.T) {
	fs := newFS(t, 1024)
	ino, err := fs.Create(ctx, RootIno, "sparse", 0644, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Write one block at offset 20 blocks: fbns 0..19 are holes.
	tail := randBytes(4, BlockSize)
	if err := fs.Write(ctx, ino, 20*BlockSize, tail); err != nil {
		t.Fatal(err)
	}
	if err := fs.CP(ctx); err != nil {
		t.Fatal(err)
	}
	v := fs.ActiveView()
	for fbn := uint32(0); fbn < 20; fbn++ {
		pbn, err := v.BlockAt(ctx, ino, fbn)
		if err != nil {
			t.Fatal(err)
		}
		if pbn != 0 {
			t.Fatalf("fbn %d should be a hole, got pbn %d", fbn, pbn)
		}
	}
	buf := make([]byte, BlockSize)
	if _, err := v.ReadAt(ctx, ino, 0, buf); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("hole read non-zero")
		}
	}
	got := make([]byte, BlockSize)
	if _, err := v.ReadAt(ctx, ino, 20*BlockSize, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, tail) {
		t.Fatal("tail block mismatch")
	}
	check(t, fs)
}

func TestOverwriteIsCopyOnWrite(t *testing.T) {
	fs := newFS(t, 512)
	ino, _ := fs.WriteFile(ctx, "/f", randBytes(5, BlockSize), 0644)
	if err := fs.CP(ctx); err != nil {
		t.Fatal(err)
	}
	oldPbn, err := fs.ActiveView().BlockAt(ctx, ino, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Write(ctx, ino, 0, randBytes(6, BlockSize)); err != nil {
		t.Fatal(err)
	}
	if err := fs.CP(ctx); err != nil {
		t.Fatal(err)
	}
	newPbn, err := fs.ActiveView().BlockAt(ctx, ino, 0)
	if err != nil {
		t.Fatal(err)
	}
	if newPbn == oldPbn {
		t.Fatalf("overwrite reused block %d in place (no COW)", oldPbn)
	}
	check(t, fs)
}

func TestTruncateGrowShrink(t *testing.T) {
	fs := newFS(t, 1024)
	data := randBytes(7, 10*BlockSize)
	ino, _ := fs.WriteFile(ctx, "/f", data, 0644)
	if err := fs.Truncate(ctx, ino, 3*BlockSize+17); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.ActiveView().ReadFile(ctx, "/f")
	if !bytes.Equal(got, data[:3*BlockSize+17]) {
		t.Fatal("shrunk file content wrong")
	}
	check(t, fs)
	// Regrow: the region past the old end must read as zeros.
	if err := fs.Truncate(ctx, ino, 5*BlockSize); err != nil {
		t.Fatal(err)
	}
	got, _ = fs.ActiveView().ReadFile(ctx, "/f")
	if len(got) != 5*BlockSize {
		t.Fatalf("size = %d", len(got))
	}
	for i := 3*BlockSize + 17; i < len(got); i++ {
		if got[i] != 0 {
			t.Fatalf("byte %d after regrow = %d, want 0", i, got[i])
		}
	}
	check(t, fs)
}

func TestTruncateFreesBlocks(t *testing.T) {
	fs := newFS(t, 1024)
	ino, _ := fs.WriteFile(ctx, "/f", randBytes(8, 100*BlockSize), 0644)
	if err := fs.CP(ctx); err != nil {
		t.Fatal(err)
	}
	before := fs.UsedBlocks()
	if err := fs.Truncate(ctx, ino, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.CP(ctx); err != nil {
		t.Fatal(err)
	}
	after := fs.UsedBlocks()
	if after >= before-90 {
		t.Fatalf("used blocks %d -> %d; truncate freed too little", before, after)
	}
	check(t, fs)
}

func TestRemoveFreesEverything(t *testing.T) {
	fs := newFS(t, 1024)
	if err := fs.CP(ctx); err != nil {
		t.Fatal(err)
	}
	baseline := fs.UsedBlocks()
	fs.WriteFile(ctx, "/d/e/f", randBytes(9, 50*BlockSize), 0644)
	if err := fs.RemovePath(ctx, "/d/e/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.RemovePath(ctx, "/d/e"); err != nil {
		t.Fatal(err)
	}
	if err := fs.RemovePath(ctx, "/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.CP(ctx); err != nil {
		t.Fatal(err)
	}
	if got := fs.UsedBlocks(); got != baseline {
		t.Fatalf("used blocks %d after remove, baseline %d", got, baseline)
	}
	check(t, fs)
}

func TestRemoveErrors(t *testing.T) {
	fs := newFS(t, 512)
	fs.Mkdir(ctx, RootIno, "d", 0755, 0, 0)
	if err := fs.Remove(ctx, RootIno, "d"); !errors.Is(err, ErrIsDir) {
		t.Fatalf("Remove(dir) err = %v, want ErrIsDir", err)
	}
	if err := fs.Remove(ctx, RootIno, "nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Remove(missing) err = %v, want ErrNotFound", err)
	}
	fs.WriteFile(ctx, "/d/x", []byte("x"), 0644)
	dIno, _ := fs.ActiveView().Namei(ctx, "/d")
	if err := fs.Rmdir(ctx, RootIno, "d"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("Rmdir(nonempty) err = %v, want ErrNotEmpty", err)
	}
	fs.Remove(ctx, dIno, "x")
	if err := fs.Rmdir(ctx, RootIno, "d"); err != nil {
		t.Fatal(err)
	}
	check(t, fs)
}

func TestCreateDuplicate(t *testing.T) {
	fs := newFS(t, 512)
	if _, err := fs.Create(ctx, RootIno, "f", 0644, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create(ctx, RootIno, "f", 0644, 0, 0); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create err = %v, want ErrExists", err)
	}
}

func TestManyFilesInDirectory(t *testing.T) {
	// Forces the directory to grow past one block.
	fs := newFS(t, 4096)
	for i := 0; i < 500; i++ {
		name := fmt.Sprintf("file-with-a-longish-name-%04d", i)
		if _, err := fs.Create(ctx, RootIno, name, 0644, 0, 0); err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
	}
	ents, err := fs.ActiveView().Readdir(ctx, RootIno)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 502 { // 500 + . + ..
		t.Fatalf("readdir = %d entries, want 502", len(ents))
	}
	// Spot-check lookups.
	for _, i := range []int{0, 250, 499} {
		name := fmt.Sprintf("file-with-a-longish-name-%04d", i)
		if _, err := fs.ActiveView().Lookup(ctx, RootIno, name); err != nil {
			t.Fatalf("lookup %s: %v", name, err)
		}
	}
	check(t, fs)
}

func TestDirectorySlotReuse(t *testing.T) {
	fs := newFS(t, 1024)
	for round := 0; round < 5; round++ {
		for i := 0; i < 50; i++ {
			if _, err := fs.Create(ctx, RootIno, fmt.Sprintf("f%d", i), 0644, 0, 0); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 50; i++ {
			if err := fs.Remove(ctx, RootIno, fmt.Sprintf("f%d", i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	st, _ := fs.GetInode(ctx, RootIno)
	if st.Size > 4*BlockSize {
		t.Fatalf("root dir grew to %d bytes despite slot reuse", st.Size)
	}
	check(t, fs)
}

func TestRename(t *testing.T) {
	fs := newFS(t, 1024)
	fs.WriteFile(ctx, "/a/f", []byte("payload"), 0644)
	fs.MkdirAll(ctx, "/b", 0755)
	aIno, _ := fs.ActiveView().Namei(ctx, "/a")
	bIno, _ := fs.ActiveView().Namei(ctx, "/b")
	if err := fs.Rename(ctx, aIno, "f", bIno, "g"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ActiveView().Namei(ctx, "/a/f"); !errors.Is(err, ErrNotFound) {
		t.Fatal("source still present after rename")
	}
	got, err := fs.ActiveView().ReadFile(ctx, "/b/g")
	if err != nil || string(got) != "payload" {
		t.Fatalf("dest read: %q, %v", got, err)
	}
	check(t, fs)
}

func TestRenameDirectoryRewiresDotDot(t *testing.T) {
	fs := newFS(t, 1024)
	fs.MkdirAll(ctx, "/a/sub", 0755)
	fs.MkdirAll(ctx, "/b", 0755)
	aIno, _ := fs.ActiveView().Namei(ctx, "/a")
	bIno, _ := fs.ActiveView().Namei(ctx, "/b")
	if err := fs.Rename(ctx, aIno, "sub", bIno, "sub"); err != nil {
		t.Fatal(err)
	}
	subIno, err := fs.ActiveView().Namei(ctx, "/b/sub")
	if err != nil {
		t.Fatal(err)
	}
	parent, err := fs.ActiveView().Lookup(ctx, subIno, "..")
	if err != nil {
		t.Fatal(err)
	}
	if parent != bIno {
		t.Fatalf("'..' = %d, want %d", parent, bIno)
	}
	check(t, fs)
}

func TestHardLink(t *testing.T) {
	fs := newFS(t, 512)
	ino, _ := fs.WriteFile(ctx, "/f", []byte("shared"), 0644)
	if err := fs.Link(ctx, ino, RootIno, "g"); err != nil {
		t.Fatal(err)
	}
	st, _ := fs.GetInode(ctx, ino)
	if st.Nlink != 2 {
		t.Fatalf("nlink = %d, want 2", st.Nlink)
	}
	if err := fs.Remove(ctx, RootIno, "f"); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ActiveView().ReadFile(ctx, "/g")
	if err != nil || string(got) != "shared" {
		t.Fatalf("after unlink of one name: %q, %v", got, err)
	}
	check(t, fs)
	if err := fs.Remove(ctx, RootIno, "g"); err != nil {
		t.Fatal(err)
	}
	check(t, fs)
}

func TestSymlink(t *testing.T) {
	fs := newFS(t, 512)
	fs.WriteFile(ctx, "/target/file", []byte("via link"), 0644)
	if _, err := fs.Symlink(ctx, RootIno, "ln", "/target"); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ActiveView().ReadFile(ctx, "/ln/file")
	if err != nil || string(got) != "via link" {
		t.Fatalf("read through symlink: %q, %v", got, err)
	}
	lnIno, _ := fs.ActiveView().Lookup(ctx, RootIno, "ln")
	target, err := fs.ActiveView().Readlink(ctx, lnIno)
	if err != nil || target != "/target" {
		t.Fatalf("readlink = %q, %v", target, err)
	}
	check(t, fs)
}

func TestSetAttr(t *testing.T) {
	fs := newFS(t, 512)
	ino, _ := fs.Create(ctx, RootIno, "f", 0644, 0, 0)
	mode, uid, xm := uint32(0600), uint32(42), uint32(0xDEAD)
	mt := int64(123456789)
	if err := fs.SetAttr(ctx, ino, Attr{Mode: &mode, UID: &uid, Mtime: &mt, XMode: &xm}); err != nil {
		t.Fatal(err)
	}
	st, _ := fs.GetInode(ctx, ino)
	if st.Mode != ModeReg|0600 || st.UID != 42 || st.Mtime != mt || st.XMode != 0xDEAD {
		t.Fatalf("attrs = %+v", st)
	}
	check(t, fs)
}

func TestPersistenceAcrossMount(t *testing.T) {
	dev := storage.NewMemDevice(1024)
	fs, err := Mkfs(ctx, dev, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	data := randBytes(10, 5*BlockSize)
	fs.WriteFile(ctx, "/deep/nested/file.bin", data, 0600)
	if err := fs.CP(ctx); err != nil {
		t.Fatal(err)
	}

	fs2, err := Mount(ctx, dev, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := fs2.ActiveView().ReadFile(ctx, "/deep/nested/file.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data lost across remount")
	}
	check(t, fs2)
}

func TestCrashLosesOnlyUncommitted(t *testing.T) {
	dev := storage.NewMemDevice(1024)
	fs, _ := Mkfs(ctx, dev, nil, Options{})
	fs.WriteFile(ctx, "/committed", []byte("safe"), 0644)
	if err := fs.CP(ctx); err != nil {
		t.Fatal(err)
	}
	fs.WriteFile(ctx, "/lost", []byte("gone"), 0644)
	fs.Crash() // no NVRAM: staged ops vanish

	fs2, err := Mount(ctx, dev, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs2.ActiveView().ReadFile(ctx, "/committed"); err != nil {
		t.Fatalf("committed file lost: %v", err)
	}
	if _, err := fs2.ActiveView().ReadFile(ctx, "/lost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("uncommitted file survived without NVRAM: %v", err)
	}
	check(t, fs2)
}

func TestNVRAMReplayRecoversOperations(t *testing.T) {
	dev := storage.NewMemDevice(1024)
	log := nvram.New(nil, nvram.Params{Size: 1 << 20})
	fs, err := Mkfs(ctx, dev, log, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fs.WriteFile(ctx, "/base", []byte("base"), 0644)
	if err := fs.CP(ctx); err != nil {
		t.Fatal(err)
	}
	// Uncommitted operations of every kind.
	fs.WriteFile(ctx, "/dir/new.txt", []byte("new data"), 0644)
	ino, _ := fs.ActiveView().Namei(ctx, "/base")
	fs.Write(ctx, ino, 4, []byte(" extended"))
	fs.Symlink(ctx, RootIno, "ln", "/dir")
	fs.MkdirAll(ctx, "/d2", 0755)
	fs.WriteFile(ctx, "/d2/victim", []byte("x"), 0644)
	fs.RemovePath(ctx, "/d2/victim")
	mode := uint32(0640)
	fs.SetAttr(ctx, ino, Attr{Mode: &mode})

	fs.Crash()

	fs2, err := Mount(ctx, dev, log, Options{})
	if err != nil {
		t.Fatalf("mount with replay: %v", err)
	}
	got, err := fs2.ActiveView().ReadFile(ctx, "/dir/new.txt")
	if err != nil || string(got) != "new data" {
		t.Fatalf("replayed create+write: %q, %v", got, err)
	}
	base, _ := fs2.ActiveView().ReadFile(ctx, "/base")
	if string(base) != "base extended" {
		t.Fatalf("replayed write: %q", base)
	}
	if _, err := fs2.ActiveView().ReadFile(ctx, "/d2/victim"); !errors.Is(err, ErrNotFound) {
		t.Fatal("replayed remove missing")
	}
	st, _ := fs2.ActiveView().Stat(ctx, "/base")
	if st.Mode&ModePermMask != 0640 {
		t.Fatalf("replayed setattr: mode %o", st.Mode)
	}
	check(t, fs2)
}

func TestAutoCPOnNVRAMHighWater(t *testing.T) {
	dev := storage.NewMemDevice(4096)
	log := nvram.New(nil, nvram.Params{Size: 64 << 10})
	fs, _ := Mkfs(ctx, dev, log, Options{})
	before := fs.CPCount()
	// Write well past the 32 KB high-water mark.
	for i := 0; i < 40; i++ {
		fs.WriteFile(ctx, fmt.Sprintf("/f%d", i), randBytes(int64(i), 2048), 0644)
	}
	if fs.CPCount() == before {
		t.Fatal("no automatic CP despite NVRAM pressure")
	}
	check(t, fs)
}

func TestNoSpace(t *testing.T) {
	fs := newFS(t, 64) // tiny volume
	var lastErr error
	for i := 0; i < 100; i++ {
		_, lastErr = fs.WriteFile(ctx, fmt.Sprintf("/f%d", i), randBytes(int64(i), BlockSize), 0644)
		if lastErr != nil {
			break
		}
	}
	if !errors.Is(lastErr, ErrNoSpace) {
		t.Fatalf("filling the volume gave %v, want ErrNoSpace", lastErr)
	}
	// The filesystem must still be consistent afterwards.
	check(t, fs)
}

func TestInodeReuseBumpsGeneration(t *testing.T) {
	fs := newFS(t, 512)
	ino1, _ := fs.Create(ctx, RootIno, "a", 0644, 0, 0)
	st1, _ := fs.GetInode(ctx, ino1)
	fs.Remove(ctx, RootIno, "a")
	ino2, _ := fs.Create(ctx, RootIno, "b", 0644, 0, 0)
	if ino2 != ino1 {
		t.Fatalf("inode not reused: got %d, want %d", ino2, ino1)
	}
	st2, _ := fs.GetInode(ctx, ino2)
	if st2.Gen <= st1.Gen {
		t.Fatalf("generation not bumped: %d -> %d", st1.Gen, st2.Gen)
	}
	check(t, fs)
}

func TestFsinfoRedundancy(t *testing.T) {
	dev := storage.NewMemDevice(512)
	fs, _ := Mkfs(ctx, dev, nil, Options{})
	fs.WriteFile(ctx, "/f", []byte("x"), 0644)
	fs.CP(ctx)
	// Corrupt fsinfo copy A; mount must fall back to copy B.
	bad := make([]byte, BlockSize)
	if err := dev.WriteBlock(ctx, 0, bad); err != nil {
		t.Fatal(err)
	}
	fs2, err := Mount(ctx, dev, nil, Options{})
	if err != nil {
		t.Fatalf("mount with corrupt fsinfo A: %v", err)
	}
	if _, err := fs2.ActiveView().ReadFile(ctx, "/f"); err != nil {
		t.Fatal(err)
	}
}

func TestGenerationAdvances(t *testing.T) {
	fs := newFS(t, 512)
	g := fs.Generation()
	fs.CP(ctx)
	if fs.Generation() != g+1 {
		t.Fatalf("generation %d after CP, want %d", fs.Generation(), g+1)
	}
}
