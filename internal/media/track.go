package media

import (
	"repro/internal/catalog"
	"repro/internal/tape"
)

// RecordSink is the record-stream contract both dump engines emit
// (structurally dumpfmt.Sink and physical.Sink).
type RecordSink interface {
	WriteRecord(data []byte) error
	NextVolume() error
}

// TrackingSink wraps a drive-backed sink and records which cartridges
// the stream lands on, and at which raw record index each begins —
// the MediaRefs the catalog stores so a restore can find and position
// the media with no operator-supplied list.
type TrackingSink struct {
	Sink  RecordSink
	Drive *tape.Drive

	refs []catalog.MediaRef
}

// bind notes the mounted cartridge as the stream's current volume.
func (t *TrackingSink) bind() {
	c := t.Drive.Loaded()
	if c == nil {
		return
	}
	if n := len(t.refs); n > 0 && t.refs[n-1].Volume == c.Label {
		return
	}
	t.refs = append(t.refs, catalog.MediaRef{Volume: c.Label, Start: int64(c.Index())})
}

// WriteRecord implements RecordSink.
func (t *TrackingSink) WriteRecord(data []byte) error {
	if len(t.refs) == 0 {
		t.bind()
	}
	return t.Sink.WriteRecord(data)
}

// NextVolume implements RecordSink, binding the newly mounted volume.
func (t *TrackingSink) NextVolume() error {
	if err := t.Sink.NextVolume(); err != nil {
		return err
	}
	t.bind()
	return nil
}

// Sync forwards the checkpoint-durability contract (dumpfmt.Syncer)
// when the wrapped sink has one.
func (t *TrackingSink) Sync() error {
	if s, ok := t.Sink.(interface{ Sync() error }); ok {
		return s.Sync()
	}
	return nil
}

// Refs returns the volumes written, in stream order.
func (t *TrackingSink) Refs() []catalog.MediaRef {
	out := make([]catalog.MediaRef, len(t.refs))
	copy(out, t.refs)
	return out
}

// Labels returns just the volume labels, in stream order.
func (t *TrackingSink) Labels() []string {
	out := make([]string, len(t.refs))
	for i, r := range t.refs {
		out[i] = r.Volume
	}
	return out
}
