// Package media manages the backup media pool: the labelled tape
// volumes the dump streams land on, their scratch → active → expired
// lifecycle, retention policies deciding which dump sets (and hence
// which media) must be kept, and the reclamation pass that erases
// volumes once nothing live references them. Every transition is
// recorded in the backup catalog's journal, so the pool's state
// survives restarts the same way the dump history does.
//
// The safety property the pool enforces is the one tape libraries are
// built around: a volume is never erased or overwritten while any
// unexpired dump set references it — retention expires sets, and only
// a volume whose referencing sets have all expired is reclaimed back
// to scratch.
package media

import (
	"fmt"
	"sort"

	"repro/internal/catalog"
	"repro/internal/tape"
)

// State is a volume's lifecycle position.
type State int

const (
	// Scratch volumes are empty and writable.
	Scratch State = iota
	// Active volumes hold data of at least one unexpired dump set and
	// are protected against erasure.
	Active
	// Expired volumes hold only expired dump sets; they are awaiting
	// reclamation and still readable (last-resort restores).
	Expired
	// Quarantined volumes carry media damage the scrubber could not
	// repair. They are excluded from Reclaim and refused by Erase —
	// frozen as evidence and for salvage reads — until an operator
	// re-registers them after replacing the media.
	Quarantined
)

func (s State) String() string {
	switch s {
	case Scratch:
		return "scratch"
	case Active:
		return "active"
	case Expired:
		return "expired"
	case Quarantined:
		return "quarantined"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Volume is one labelled media volume and its pool bookkeeping.
type Volume struct {
	Label string
	State State
	// Sets are the dump-set IDs whose streams touch this volume.
	Sets []uint64
	// Cart binds the volume to simulated tape media; nil for volumes
	// that are host files (backupctl stream files).
	Cart *tape.Cartridge
}

// Pool tracks a set of volumes against a catalog.
type Pool struct {
	Name string
	cat  *catalog.Catalog
	vols map[string]*Volume
	// order preserves registration order for deterministic iteration.
	order []string
}

// NewPool creates a pool named name, recording against cat. Lifecycle
// history already in the catalog (a reopened journal) is replayed so
// the pool resumes where it left off.
func NewPool(name string, cat *catalog.Catalog) *Pool {
	p := &Pool{Name: name, cat: cat, vols: make(map[string]*Volume)}
	for _, ev := range cat.MediaEvents() {
		if ev.Pool != name {
			continue
		}
		switch ev.Kind {
		case catalog.MediaRegister:
			p.ensure(ev.Volume)
		case catalog.MediaActivate:
			p.ensure(ev.Volume).State = Active
		case catalog.MediaReclaim:
			v := p.ensure(ev.Volume)
			v.State = Scratch
			v.Sets = nil
		case catalog.MediaQuarantine:
			p.ensure(ev.Volume).State = Quarantined
		}
	}
	// Rebuild set references and expired states from the dump history.
	for _, ds := range cat.Sets() {
		for _, m := range ds.Media {
			if v, ok := p.vols[m.Volume]; ok && v.State != Scratch {
				v.Sets = append(v.Sets, ds.ID)
			}
		}
	}
	for _, v := range p.vols {
		p.refreshState(v)
	}
	return p
}

func (p *Pool) ensure(label string) *Volume {
	if v, ok := p.vols[label]; ok {
		return v
	}
	v := &Volume{Label: label}
	p.vols[label] = v
	p.order = append(p.order, label)
	return v
}

// refreshState demotes an Active volume to Expired when every
// referencing set has expired (it never resurrects a volume).
func (p *Pool) refreshState(v *Volume) {
	if v.State != Active {
		return
	}
	for _, id := range v.Sets {
		if _, dead := p.cat.Expired(id); !dead {
			return
		}
	}
	if len(v.Sets) > 0 {
		v.State = Expired
	}
}

// Register introduces a volume (optionally bound to a cartridge) as
// scratch, journaling the event. Registering a known label rebinds
// its cartridge without a new event.
func (p *Pool) Register(label string, cart *tape.Cartridge, now int64) error {
	if v, ok := p.vols[label]; ok {
		v.Cart = cart
		return nil
	}
	v := p.ensure(label)
	v.Cart = cart
	return p.cat.AppendMediaEvent(catalog.MediaEvent{
		Kind: catalog.MediaRegister, Volume: label, Pool: p.Name, Time: now,
	})
}

// Adopt registers every cartridge in a drive's stacker (and the
// mounted one) as pool volumes — how a filer's preloaded tape bank
// joins the pool.
func (p *Pool) Adopt(d *tape.Drive, now int64) error {
	if c := d.Loaded(); c != nil {
		if err := p.Register(c.Label, c, now); err != nil {
			return err
		}
	}
	for _, c := range d.Stacker() {
		if err := p.Register(c.Label, c, now); err != nil {
			return err
		}
	}
	return nil
}

// Volume returns the pool's view of a label.
func (p *Pool) Volume(label string) (*Volume, bool) {
	v, ok := p.vols[label]
	return v, ok
}

// Volumes lists the pool in registration order.
func (p *Pool) Volumes() []*Volume {
	out := make([]*Volume, 0, len(p.order))
	for _, l := range p.order {
		out = append(out, p.vols[l])
	}
	return out
}

// CommitSet records that a dump set's stream landed on the given
// volumes: each becomes Active (journaled on the first transition)
// and gains the set reference. Unknown labels are auto-registered —
// a dump may have spanned onto media the pool had not seen.
func (p *Pool) CommitSet(setID uint64, labels []string, now int64) error {
	for _, l := range labels {
		if _, ok := p.vols[l]; !ok {
			if err := p.Register(l, nil, now); err != nil {
				return err
			}
		}
		v := p.vols[l]
		if v.State != Active {
			if err := p.cat.AppendMediaEvent(catalog.MediaEvent{
				Kind: catalog.MediaActivate, Volume: l, Pool: p.Name, Time: now,
			}); err != nil {
				return err
			}
			v.State = Active
		}
		v.Sets = append(v.Sets, setID)
	}
	return nil
}

// ApplyRetention expires every dump set of fsid+engine the policy does
// not keep, closing the kept set over base links first so retention
// can never break a restore chain: keeping an incremental keeps its
// whole chain. It returns the IDs newly expired.
func (p *Pool) ApplyRetention(policy RetentionPolicy, fsid string, engine catalog.Engine, now int64) ([]uint64, error) {
	var sets []catalog.DumpSet
	for _, ds := range p.cat.Live() {
		if ds.FSID == fsid && ds.Engine == engine {
			sets = append(sets, ds)
		}
	}
	keep := policy.Keep(sets, now)
	chainClose(sets, keep)
	var expired []uint64
	for _, ds := range sets {
		if keep[ds.ID] {
			continue
		}
		if err := p.cat.Expire(ds.ID, now); err != nil {
			return expired, err
		}
		expired = append(expired, ds.ID)
	}
	for _, v := range p.vols {
		p.refreshState(v)
	}
	return expired, nil
}

// chainClose adds the transitive bases of every kept set to keep.
func chainClose(sets []catalog.DumpSet, keep map[uint64]bool) {
	byID := make(map[uint64]int, len(sets))
	for i, ds := range sets {
		byID[ds.ID] = i
	}
	base := func(ds catalog.DumpSet) (uint64, bool) {
		var found *catalog.DumpSet
		for i := range sets {
			b := &sets[i]
			if b.ID >= ds.ID {
				continue
			}
			if ds.Engine == catalog.Image {
				if b.Gen != ds.BaseGen {
					continue
				}
			} else if b.Date != ds.BaseDate {
				continue
			}
			if found == nil || b.ID > found.ID {
				found = b
			}
		}
		if found == nil {
			return 0, false
		}
		return found.ID, true
	}
	changed := true
	for changed {
		changed = false
		for _, ds := range sets {
			if !keep[ds.ID] || ds.Full() {
				continue
			}
			if id, ok := base(ds); ok && !keep[id] {
				keep[id] = true
				changed = true
			}
		}
	}
}

// Reclaim erases and returns to scratch every volume whose referencing
// dump sets have all expired. Volumes with any live reference are left
// untouched — the pool's overwrite protection. It returns the labels
// reclaimed.
func (p *Pool) Reclaim(now int64) ([]string, error) {
	var out []string
	chunkVols := p.cat.ChunkVolumes()
	for _, l := range p.order {
		v := p.vols[l]
		p.refreshState(v)
		if v.State != Expired {
			continue
		}
		// A volume holding live indexed chunks is pinned even when every
		// dump set directly on it has expired: reverse dedup can leave it
		// hosting the only copy of chunks newer sets reference. Sweep the
		// chunk index first (catalog.SweepChunks), then reclaim.
		if chunkVols[l] {
			continue
		}
		if v.Cart != nil {
			v.Cart.Erase()
		}
		if err := p.cat.AppendMediaEvent(catalog.MediaEvent{
			Kind: catalog.MediaReclaim, Volume: l, Pool: p.Name, Time: now,
		}); err != nil {
			return out, err
		}
		v.State = Scratch
		v.Sets = nil
		out = append(out, l)
	}
	return out, nil
}

// Quarantine freezes a volume after unrepairable damage: journaled,
// excluded from Reclaim, refused by Erase. Idempotent while the volume
// stays quarantined. Unknown labels are auto-registered first — damage
// may be found on media the pool had not seen.
func (p *Pool) Quarantine(label string, now int64) error {
	if _, ok := p.vols[label]; !ok {
		if err := p.Register(label, nil, now); err != nil {
			return err
		}
	}
	v := p.vols[label]
	if v.State == Quarantined {
		return nil
	}
	if err := p.cat.AppendMediaEvent(catalog.MediaEvent{
		Kind: catalog.MediaQuarantine, Volume: label, Pool: p.Name, Time: now,
	}); err != nil {
		return err
	}
	v.State = Quarantined
	return nil
}

// Erase force-erases one volume, refusing while any unexpired dump
// set references it.
func (p *Pool) Erase(label string, now int64) error {
	v, ok := p.vols[label]
	if !ok {
		return fmt.Errorf("media: unknown volume %q", label)
	}
	if v.State == Quarantined {
		return fmt.Errorf("media: volume %q is quarantined", label)
	}
	for _, id := range v.Sets {
		if _, dead := p.cat.Expired(id); !dead {
			return fmt.Errorf("media: volume %q holds unexpired dump set %d", label, id)
		}
	}
	if p.cat.ChunkVolumes()[label] {
		return fmt.Errorf("media: volume %q holds live dedup chunks", label)
	}
	if v.Cart != nil {
		v.Cart.Erase()
	}
	if err := p.cat.AppendMediaEvent(catalog.MediaEvent{
		Kind: catalog.MediaReclaim, Volume: label, Pool: p.Name, Time: now,
	}); err != nil {
		return err
	}
	v.State = Scratch
	v.Sets = nil
	return nil
}

// RetentionPolicy decides which dump sets to keep. Keep returns the
// IDs to retain; everything else is expired (after chain closure).
type RetentionPolicy interface {
	Keep(sets []catalog.DumpSet, now int64) map[uint64]bool
}

// KeepLast retains the N most recent dump sets.
type KeepLast struct{ N int }

// Keep implements RetentionPolicy.
func (k KeepLast) Keep(sets []catalog.DumpSet, _ int64) map[uint64]bool {
	keep := map[uint64]bool{}
	ids := make([]uint64, 0, len(sets))
	for _, ds := range sets {
		ids = append(ids, ds.ID)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] > ids[j] })
	for i, id := range ids {
		if i >= k.N {
			break
		}
		keep[id] = true
	}
	return keep
}

// GFS is grandfather-father-son retention: keep the newest set of each
// of the last Daily days, the last Weekly weeks, and the last Monthly
// months. Day is the length of one day in catalog time units (the
// simulated clock runs in nanoseconds; pass 24h). Weeks are 7 days,
// months 30.
type GFS struct {
	Daily, Weekly, Monthly int
	Day                    int64
}

// Keep implements RetentionPolicy.
func (g GFS) Keep(sets []catalog.DumpSet, _ int64) map[uint64]bool {
	keep := map[uint64]bool{}
	if g.Day <= 0 || len(sets) == 0 {
		return keep
	}
	bucketKeep := func(unit int64, n int) {
		if n <= 0 {
			return
		}
		// Newest set per bucket.
		newest := map[int64]catalog.DumpSet{}
		for _, ds := range sets {
			b := ds.Date / unit
			if cur, ok := newest[b]; !ok || ds.Date > cur.Date || (ds.Date == cur.Date && ds.ID > cur.ID) {
				newest[b] = ds
			}
		}
		buckets := make([]int64, 0, len(newest))
		for b := range newest {
			buckets = append(buckets, b)
		}
		sort.Slice(buckets, func(i, j int) bool { return buckets[i] > buckets[j] })
		for i, b := range buckets {
			if i >= n {
				break
			}
			keep[newest[b].ID] = true
		}
	}
	bucketKeep(g.Day, g.Daily)
	bucketKeep(7*g.Day, g.Weekly)
	bucketKeep(30*g.Day, g.Monthly)
	return keep
}
