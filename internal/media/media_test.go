package media

import (
	"reflect"
	"testing"

	"repro/internal/catalog"
	"repro/internal/chunk"
	"repro/internal/tape"
)

func newCat(t *testing.T) (*catalog.Catalog, *catalog.MemStore) {
	t.Helper()
	store := &catalog.MemStore{}
	c, err := catalog.Open(store)
	if err != nil {
		t.Fatal(err)
	}
	return c, store
}

func record(t *testing.T, c *catalog.Catalog, fsid string, level int32, date, baseDate int64, vols ...string) uint64 {
	t.Helper()
	var media []catalog.MediaRef
	for _, v := range vols {
		media = append(media, catalog.MediaRef{Volume: v})
	}
	id, err := c.AppendDumpSet(catalog.DumpSet{
		Engine: catalog.Logical, FSID: fsid, Snap: "s",
		Level: level, Date: date, BaseDate: baseDate, Media: media,
	})
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestLifecycleAndReclaim(t *testing.T) {
	c, _ := newCat(t)
	p := NewPool("main", c)
	carts := map[string]*tape.Cartridge{}
	for _, l := range []string{"t0", "t1", "t2"} {
		carts[l] = tape.NewCartridge(l)
		if err := p.Register(l, carts[l], 0); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range []string{"t0", "t1", "t2"} {
		v, _ := p.Volume(l)
		if v.State != Scratch {
			t.Fatalf("%s registered as %v", l, v.State)
		}
	}

	// Set 1 spans t0+t1; set 2 lives on t1 alone.
	id1 := record(t, c, "vol0", 0, 100, 0, "t0", "t1")
	if err := p.CommitSet(id1, []string{"t0", "t1"}, 100); err != nil {
		t.Fatal(err)
	}
	id2 := record(t, c, "vol0", 3, 200, 100, "t1")
	if err := p.CommitSet(id2, []string{"t1"}, 200); err != nil {
		t.Fatal(err)
	}
	for _, l := range []string{"t0", "t1"} {
		v, _ := p.Volume(l)
		if v.State != Active {
			t.Fatalf("%s after commit: %v", l, v.State)
		}
	}

	// Expire set 1 only: t0 becomes reclaimable, t1 must not — set 2
	// still references it. This is the acceptance criterion.
	if err := c.Expire(id1, 300); err != nil {
		t.Fatal(err)
	}
	got, err := p.Reclaim(300)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{"t0"}) {
		t.Fatalf("reclaimed %v, want [t0]", got)
	}
	if v, _ := p.Volume("t0"); v.State != Scratch || carts["t0"].Records() != 0 {
		t.Fatalf("t0 not erased to scratch: %v, %d records", v.State, carts["t0"].Records())
	}
	if v, _ := p.Volume("t1"); v.State != Active {
		t.Fatalf("t1 reclaimed while set %d lives: %v", id2, v.State)
	}
	// Force-erase of a live volume must refuse.
	if err := p.Erase("t1", 300); err == nil {
		t.Fatal("Erase of live volume succeeded")
	}

	// Expire set 2: now t1 goes too.
	if err := c.Expire(id2, 400); err != nil {
		t.Fatal(err)
	}
	got, err = p.Reclaim(400)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{"t1"}) {
		t.Fatalf("second reclaim %v, want [t1]", got)
	}
}

func TestPoolReplayFromJournal(t *testing.T) {
	c, store := newCat(t)
	p := NewPool("main", c)
	if err := p.Register("t0", nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := p.Register("t1", nil, 0); err != nil {
		t.Fatal(err)
	}
	id1 := record(t, c, "vol0", 0, 100, 0, "t0")
	if err := p.CommitSet(id1, []string{"t0"}, 100); err != nil {
		t.Fatal(err)
	}
	id2 := record(t, c, "vol0", 3, 200, 100, "t1")
	if err := p.CommitSet(id2, []string{"t1"}, 200); err != nil {
		t.Fatal(err)
	}
	if err := c.Expire(id2, 300); err != nil {
		t.Fatal(err)
	}

	// Reopen the journal: the pool must resume with t0 active, t1
	// expired (its only set expired), registration order preserved.
	store2 := &catalog.MemStore{Buf: append([]byte(nil), store.Buf...)}
	c2, err := catalog.Open(store2)
	if err != nil {
		t.Fatal(err)
	}
	p2 := NewPool("main", c2)
	var labels []string
	for _, v := range p2.Volumes() {
		labels = append(labels, v.Label)
	}
	if !reflect.DeepEqual(labels, []string{"t0", "t1"}) {
		t.Fatalf("replayed order %v", labels)
	}
	if v, _ := p2.Volume("t0"); v.State != Active || !reflect.DeepEqual(v.Sets, []uint64{id1}) {
		t.Fatalf("t0 replayed as %v sets %v", v.State, v.Sets)
	}
	if v, _ := p2.Volume("t1"); v.State != Expired {
		t.Fatalf("t1 replayed as %v, want expired", v.State)
	}

	// Reclaim in the second life, replay a third: t1 is scratch.
	if _, err := p2.Reclaim(400); err != nil {
		t.Fatal(err)
	}
	c3, err := catalog.Open(&catalog.MemStore{Buf: store2.Buf})
	if err != nil {
		t.Fatal(err)
	}
	p3 := NewPool("main", c3)
	if v, _ := p3.Volume("t1"); v.State != Scratch || len(v.Sets) != 0 {
		t.Fatalf("t1 after reclaim replay: %v sets %v", v.State, v.Sets)
	}
}

func TestKeepLastWithChainClosure(t *testing.T) {
	c, _ := newCat(t)
	p := NewPool("main", c)
	// Full(1) <- inc(2) <- inc(3); keeping only the newest must keep the
	// whole chain — retention can never break a restore.
	id1 := record(t, c, "vol0", 0, 100, 0, "t0")
	id2 := record(t, c, "vol0", 3, 200, 100, "t1")
	id3 := record(t, c, "vol0", 5, 300, 200, "t2")
	for i, id := range []uint64{id1, id2, id3} {
		if err := p.CommitSet(id, []string{[]string{"t0", "t1", "t2"}[i]}, int64(100*(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	expired, err := p.ApplyRetention(KeepLast{N: 1}, "vol0", catalog.Logical, 400)
	if err != nil {
		t.Fatal(err)
	}
	if len(expired) != 0 {
		t.Fatalf("chain closure failed: expired %v", expired)
	}

	// A second, independent full CAN be dropped.
	id4 := record(t, c, "vol0", 0, 400, 0, "t3")
	if err := p.CommitSet(id4, []string{"t3"}, 400); err != nil {
		t.Fatal(err)
	}
	id5 := record(t, c, "vol0", 3, 500, 400, "t4")
	if err := p.CommitSet(id5, []string{"t4"}, 500); err != nil {
		t.Fatal(err)
	}
	expired, err = p.ApplyRetention(KeepLast{N: 1}, "vol0", catalog.Logical, 600)
	if err != nil {
		t.Fatal(err)
	}
	// Keep id5 → chain closure keeps id4; the old chain (1,2,3) expires.
	if !reflect.DeepEqual(expired, []uint64{id1, id2, id3}) {
		t.Fatalf("expired %v, want [1 2 3]", expired)
	}
}

func TestGFSRetention(t *testing.T) {
	const day = int64(1000)
	c, _ := newCat(t)
	p := NewPool("main", c)
	// Two fulls per day for 10 days.
	var ids []uint64
	for d := 0; d < 10; d++ {
		for h := 0; h < 2; h++ {
			date := int64(d)*day + int64(h)*100
			id := record(t, c, "vol0", 0, date, 0, "t0")
			if err := p.CommitSet(id, []string{"t0"}, date); err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
	}
	// Keep 3 dailies + 2 weeklies.
	g := GFS{Daily: 3, Weekly: 2, Day: day}
	if _, err := p.ApplyRetention(g, "vol0", catalog.Logical, 10*day); err != nil {
		t.Fatal(err)
	}
	var live []uint64
	for _, ds := range c.Live() {
		live = append(live, ds.ID)
	}
	// Dailies: newest of days 9, 8, 7 → ids 20, 18, 16.
	// Weeklies: newest of week buckets [7..9] and [0..6] → ids 20, 14.
	want := []uint64{14, 16, 18, 20}
	if !reflect.DeepEqual(live, want) {
		t.Fatalf("GFS live = %v, want %v", live, want)
	}
}

func TestAdoptFromDrive(t *testing.T) {
	c, _ := newCat(t)
	d := tape.NewDrive(nil, "bank", tape.Params{})
	d.AddCartridges(tape.NewCartridge("c0"), tape.NewCartridge("c1"))
	p := NewPool("main", c)
	if err := p.Adopt(d, 0); err != nil {
		t.Fatal(err)
	}
	if len(p.Volumes()) != 2 {
		t.Fatalf("adopted %d volumes, want 2", len(p.Volumes()))
	}
	for _, v := range p.Volumes() {
		if v.Cart == nil {
			t.Fatalf("volume %s not bound to its cartridge", v.Label)
		}
	}
}

// TestReclaimPinsChunkVolumes: a volume whose dump sets all expired is
// still not reclaimable while the chunk index holds live chunks on it —
// reverse dedup can leave it hosting the only copy of chunks newer
// sets reference. Sweeping the zero-ref chunks releases the pin.
func TestReclaimPinsChunkVolumes(t *testing.T) {
	c, _ := newCat(t)
	p := NewPool("main", c)
	cart := tape.NewCartridge("t0")
	if err := p.Register("t0", cart, 0); err != nil {
		t.Fatal(err)
	}
	id := record(t, c, "vol0", 0, 100, 0, "t0")
	if err := p.CommitSet(id, []string{"t0"}, 100); err != nil {
		t.Fatal(err)
	}
	var h chunk.Hash
	h[0] = 0x55
	if err := c.CommitChunks([]chunk.Entry{{
		Hash: h, RawLen: 100, StoredLen: 100,
		Loc: chunk.Loc{Volume: "t0", Index: 0},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Expire(id, 200); err != nil {
		t.Fatal(err)
	}
	got, err := p.Reclaim(300)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("reclaimed %v while t0 holds live chunks", got)
	}
	if err := p.Erase("t0", 300); err == nil {
		t.Fatal("Erase succeeded on a volume holding live chunks")
	}
	// No live manifest references h, so the sweep removes it and the
	// volume becomes reclaimable.
	if _, err := c.SweepChunks(nil); err != nil {
		t.Fatal(err)
	}
	got, err = p.Reclaim(400)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "t0" {
		t.Fatalf("post-sweep reclaim = %v, want [t0]", got)
	}
}
