package chunk

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sync"

	"repro/internal/sim"
	"repro/internal/tape"
)

// ErrChunkErased is returned by media reads of a chunk the sweep has
// erased. Seeing it through a live manifest means the sweep's
// zero-ref precondition was violated — the chaos tests assert it
// never surfaces.
var ErrChunkErased = errors.New("chunk: chunk erased")

// --- MemMedia -----------------------------------------------------------

// MemMedia is in-memory chunk storage for tests and the chaos rigs.
// Loc.Index is the append sequence number.
type MemMedia struct {
	mu     sync.Mutex
	vol    string
	chunks [][]byte
	stored int64

	// FailAfter, when positive, fails the n-th next Append and every
	// one after it — the chaos hook simulating media loss mid-dump.
	FailAfter int
	appends   int
}

// NewMemMedia creates an empty in-memory volume labelled vol.
func NewMemMedia(vol string) *MemMedia { return &MemMedia{vol: vol} }

// Append implements Media.
func (m *MemMedia) Append(data []byte) (Loc, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.appends++
	if m.FailAfter > 0 && m.appends >= m.FailAfter {
		return Loc{}, errors.New("chunk: injected media failure")
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	m.chunks = append(m.chunks, cp)
	m.stored += int64(len(cp))
	return Loc{Volume: m.vol, Index: int64(len(m.chunks) - 1)}, nil
}

// ReadAt implements Media.
func (m *MemMedia) ReadAt(loc Loc) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if loc.Volume != m.vol {
		return nil, fmt.Errorf("chunk: volume %q not mounted (have %q)", loc.Volume, m.vol)
	}
	if loc.Index < 0 || loc.Index >= int64(len(m.chunks)) {
		return nil, fmt.Errorf("chunk: index %d out of range", loc.Index)
	}
	data := m.chunks[loc.Index]
	if data == nil {
		return nil, ErrChunkErased
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

// Erase implements Eraser: the chunk's bytes are gone for good.
func (m *MemMedia) Erase(loc Loc) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if loc.Volume != m.vol || loc.Index < 0 || loc.Index >= int64(len(m.chunks)) {
		return fmt.Errorf("chunk: erase %s@%d: no such chunk", loc.Volume, loc.Index)
	}
	if m.chunks[loc.Index] != nil {
		m.stored -= int64(len(m.chunks[loc.Index]))
		m.chunks[loc.Index] = nil
	}
	return nil
}

// StoredBytes returns the live (unerased) bytes on the volume.
func (m *MemMedia) StoredBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stored
}

// --- FileMedia ----------------------------------------------------------

// maxFileChunk bounds a frame length read back from a chunk-store
// file, so a corrupt length prefix cannot drive an oversized
// allocation. Far above any splitter Max in use.
const maxFileChunk = 16 << 20

// FileMedia stores chunks in one host file — backupctl's
// `<volume>.chunkstore`. Frames are [u32 LE length][payload];
// Loc.Index is the frame's byte offset. Erase zeroes a frame's
// payload in place (the space itself is reclaimed only by deleting
// the store once every set on it has expired, like retiring a tape).
type FileMedia struct {
	mu  sync.Mutex
	vol string
	f   *os.File
	off int64 // append offset
}

// OpenFileMedia opens or creates the chunk store at path, labelled vol.
func OpenFileMedia(path, vol string) (*FileMedia, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &FileMedia{vol: vol, f: f, off: st.Size()}, nil
}

// Volume returns the media's volume label.
func (m *FileMedia) Volume() string { return m.vol }

// Append implements Media.
func (m *FileMedia) Append(data []byte) (Loc, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(data)))
	at := m.off
	if _, err := m.f.WriteAt(hdr[:], at); err != nil {
		return Loc{}, err
	}
	if _, err := m.f.WriteAt(data, at+4); err != nil {
		return Loc{}, err
	}
	m.off = at + 4 + int64(len(data))
	return Loc{Volume: m.vol, Index: at}, nil
}

// ReadAt implements Media.
func (m *FileMedia) ReadAt(loc Loc) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if loc.Volume != m.vol {
		return nil, fmt.Errorf("chunk: volume %q not mounted (have %q)", loc.Volume, m.vol)
	}
	var hdr [4]byte
	if _, err := m.f.ReadAt(hdr[:], loc.Index); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > maxFileChunk {
		return nil, fmt.Errorf("chunk: bad frame length %d at %d", n, loc.Index)
	}
	data := make([]byte, n)
	if _, err := m.f.ReadAt(data, loc.Index+4); err != nil {
		return nil, err
	}
	return data, nil
}

// Erase implements Eraser by zeroing the frame's payload. The frame
// header survives so later offsets stay valid.
func (m *FileMedia) Erase(loc Loc) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	var hdr [4]byte
	if _, err := m.f.ReadAt(hdr[:], loc.Index); err != nil {
		return err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > maxFileChunk {
		return fmt.Errorf("chunk: bad frame length %d at %d", n, loc.Index)
	}
	_, err := m.f.WriteAt(make([]byte, n), loc.Index+4)
	return err
}

// Sync implements Syncer.
func (m *FileMedia) Sync() error { return m.f.Sync() }

// Close closes the store.
func (m *FileMedia) Close() error { return m.f.Close() }

// --- DriveMedia ---------------------------------------------------------

// DriveMedia adapts a simulated tape drive (with stacker) to chunk
// Media, charging virtual time for every record and repositioning
// pass — the media model the EXPERIMENTS.md dedup-week numbers run
// on. Loc.Volume is the cartridge label, Loc.Index the raw record
// index.
//
// A dump only appends (dedup hits never touch the drive — that is the
// point); a restore only reads, repositioning with Rewind +
// SpaceRecords exactly like the catalog-driven restore planner does.
// Reverse-dedup'd latest sets read back as a straight forward scan;
// forward-dedup'd old sets pay the seeks, which is the RevDedup
// tradeoff the experiment measures.
type DriveMedia struct {
	Drive *tape.Drive
	Proc  *sim.Proc

	pos int // tracked read-head position on the loaded cartridge
}

// NewDriveMedia wraps drive; proc (may be nil) is charged tape time.
func NewDriveMedia(drive *tape.Drive, proc *sim.Proc) *DriveMedia {
	return &DriveMedia{Drive: drive, Proc: proc}
}

// Append implements Media, spanning cartridges at end of media.
func (m *DriveMedia) Append(data []byte) (Loc, error) {
	for {
		cart := m.Drive.Loaded()
		if cart == nil {
			if err := m.Drive.Load(m.Proc); err != nil {
				return Loc{}, err
			}
			m.pos = 0
			continue
		}
		idx := cart.Index()
		err := m.Drive.WriteRecord(m.Proc, data)
		if err == nil {
			return Loc{Volume: cart.Label, Index: int64(idx)}, nil
		}
		if !errors.Is(err, tape.ErrEndOfMedia) {
			return Loc{}, err
		}
		if err := m.Drive.Load(m.Proc); err != nil {
			return Loc{}, err
		}
		m.pos = 0
	}
}

// ReadAt implements Media: mount the chunk's cartridge if needed,
// position the head (forward spacing at search speed, backward via a
// rewind) and read the record.
func (m *DriveMedia) ReadAt(loc Loc) ([]byte, error) {
	if err := m.mount(loc.Volume); err != nil {
		return nil, err
	}
	target := int(loc.Index)
	if target < m.pos {
		m.Drive.Rewind(m.Proc)
		m.pos = 0
	}
	if target > m.pos {
		if err := m.Drive.SpaceRecords(m.Proc, target-m.pos); err != nil {
			return nil, err
		}
		m.pos = target
	}
	rec, err := m.Drive.ReadRecord(m.Proc)
	if err != nil {
		return nil, err
	}
	m.pos++
	return rec, nil
}

// NextVolume cycles the stacker to the next cartridge, so a scheduler
// can give each day's full its own volume (and a restore of the
// newest set mounts one cartridge and streams, never spacing over
// older sets' bytes).
func (m *DriveMedia) NextVolume() error {
	if err := m.Drive.Load(m.Proc); err != nil {
		return err
	}
	m.pos = 0
	return nil
}

// mount cycles the stacker until the named cartridge is loaded.
func (m *DriveMedia) mount(vol string) error {
	if c := m.Drive.Loaded(); c != nil && c.Label == vol {
		return nil
	}
	// One full pass over the stacker finds the cartridge or proves it
	// isn't there.
	for range m.Drive.Stacker() {
		if err := m.Drive.Load(m.Proc); err != nil {
			return err
		}
		m.pos = 0
		if c := m.Drive.Loaded(); c != nil && c.Label == vol {
			return nil
		}
	}
	return fmt.Errorf("chunk: cartridge %q not in stacker", vol)
}
