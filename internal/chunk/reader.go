package chunk

import (
	"fmt"
	"io"

	"repro/internal/dumpfmt"
)

// RecordBytes is the record size the Reader re-blocks restored
// streams into: one dumpfmt blocked record. dumpfmt.Reader truncates
// records to whole 1 KB units, so chunk-sized records (arbitrary
// lengths) cannot be passed through raw; physical restore reassembles
// the byte stream and doesn't care.
const RecordBytes = dumpfmt.NTRec * dumpfmt.TPBSize

// Reader reconstitutes a dedup-encoded stream: manifest refs resolve
// through the index to stored chunks, which are read, decompressed,
// verified against their content hash and re-blocked into tape-sized
// records. It implements dumpfmt.Source (and physical's Source shape),
// so either engine's restore consumes it unchanged.
type Reader struct {
	index Lookup
	media Media
	refs  []Ref
	next  int // next ref to fetch

	buf []byte // decompressed bytes pending emission
	off int    // read offset into buf
}

// NewReader reads back the stream m describes.
func NewReader(index Lookup, media Media, m Manifest) *Reader {
	return &Reader{index: index, media: media, refs: m.Refs}
}

// ReadRecord implements dumpfmt.Source: the next RecordBytes of the
// stream (final record short), io.EOF at the end. Each call returns a
// fresh buffer, matching the tape-drive source contract.
func (r *Reader) ReadRecord() ([]byte, error) {
	rec := make([]byte, 0, RecordBytes)
	for len(rec) < RecordBytes {
		if r.off == len(r.buf) {
			if r.next == len(r.refs) {
				break
			}
			if err := r.fetch(r.refs[r.next]); err != nil {
				return nil, err
			}
			r.next++
		}
		n := copy(rec[len(rec):RecordBytes], r.buf[r.off:])
		rec = rec[:len(rec)+n]
		r.off += n
	}
	if len(rec) == 0 {
		return nil, io.EOF
	}
	return rec, nil
}

// fetch loads and verifies one chunk into the pending buffer.
func (r *Reader) fetch(ref Ref) error {
	e, ok := r.index.LookupChunk(ref.Hash)
	if !ok {
		return fmt.Errorf("chunk: %s not in index (erased while referenced?)", ref.Hash)
	}
	stored, err := r.media.ReadAt(e.Loc)
	if err != nil {
		return fmt.Errorf("chunk: reading %s from %s@%d: %w", ref.Hash, e.Loc.Volume, e.Loc.Index, err)
	}
	if len(stored) != int(e.StoredLen) {
		return fmt.Errorf("chunk: %s: %d stored bytes, index says %d", ref.Hash, len(stored), e.StoredLen)
	}
	raw := stored
	if e.Compressed {
		if raw, err = decompress(stored, int(e.RawLen)); err != nil {
			return fmt.Errorf("chunk: %s: %w", ref.Hash, err)
		}
	}
	if len(raw) != int(ref.RawLen) {
		return fmt.Errorf("chunk: %s: %d raw bytes, manifest says %d", ref.Hash, len(raw), ref.RawLen)
	}
	// End-to-end integrity: the bytes must hash to the address the
	// manifest asked for, whatever media and index said.
	if Sum(raw) != ref.Hash {
		return fmt.Errorf("chunk: %s: content hash mismatch (corrupt chunk)", ref.Hash)
	}
	r.buf = raw
	r.off = 0
	return nil
}
