package chunk

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sync"
)

// Per-chunk compression: deflate at BestSpeed, with the encoder and
// decoder state pooled so the steady-state dump path doesn't rebuild
// a flate window per chunk. Compression is skipped when it doesn't
// pay — already-compressed data (media files, archives) would only
// grow, and the Entry.Compressed bit keeps restore honest.

var flateWriters = sync.Pool{New: func() any {
	w, _ := flate.NewWriter(io.Discard, flate.BestSpeed)
	return w
}}

var flateReaders = sync.Pool{New: func() any {
	return flate.NewReader(bytes.NewReader(nil))
}}

// compress returns the deflate encoding of p, or nil when the encoding
// would not be smaller than p (store raw instead).
func compress(p []byte) []byte {
	var buf bytes.Buffer
	buf.Grow(len(p))
	w := flateWriters.Get().(*flate.Writer)
	w.Reset(&buf)
	_, werr := w.Write(p)
	cerr := w.Close()
	flateWriters.Put(w)
	if werr != nil || cerr != nil || buf.Len() >= len(p) {
		return nil
	}
	return buf.Bytes()
}

// decompress inflates p into a fresh rawLen-byte buffer, failing on
// short, long or malformed input.
func decompress(p []byte, rawLen int) ([]byte, error) {
	r := flateReaders.Get().(io.ReadCloser)
	defer flateReaders.Put(r)
	if err := r.(flate.Resetter).Reset(bytes.NewReader(p), nil); err != nil {
		return nil, err
	}
	out := make([]byte, rawLen)
	if _, err := io.ReadFull(r, out); err != nil {
		return nil, fmt.Errorf("chunk: inflate: %w", err)
	}
	var one [1]byte
	if n, _ := r.Read(one[:]); n != 0 {
		return nil, fmt.Errorf("chunk: inflate: %d-byte chunk overflows its raw length %d", len(p), rawLen)
	}
	return out, nil
}
