// Package chunk is the content-defined dedup + compression layer that
// sits between the dump engines and their media sinks (ROADMAP item 1).
//
// A dump stream — either engine's, unchanged — is fed through a
// rolling-hash splitter (Gear/FastCDC-style; see splitter.go) that
// cuts it into content-defined chunks, so an insertion early in a file
// shifts boundaries only locally and successive fulls of a
// mostly-unchanged volume resolve to mostly-identical chunks. Each
// chunk is addressed by its SHA-256; a chunk already in the index is a
// dedup hit and is NOT written to media again — the stream's manifest
// just references it. Misses are compressed (deflate, skipped when the
// bytes don't compress) and appended to chunk media, and their index
// entries are journaled in the backup catalog with the same CRC
// framing and torn-tail recovery the rest of the catalog enjoys.
//
// Restore is the inverse: a manifest's refs resolve through the index
// to stored locations, chunks are read, decompressed, verified against
// their hash, and re-blocked into tape-sized records, so either
// engine's restore consumes the stream without knowing dedup happened.
//
// Two dedup directions are supported (see Writer):
//
//   - Forward (default): a hit against an older set references the old
//     copy. New fulls write almost nothing — but the newest stream is
//     scattered across the media of every set it dedups against.
//   - Reverse (RevDedup): a hit against an older set is rewritten to
//     the current media region and the index entry is superseded, so
//     the NEWEST stream stays contiguous on media and restores at
//     streaming rate; the older sets' manifests transparently redirect
//     to the new copy (manifests hold hashes, the index maps hash →
//     current location, latest wins), and the old copies become dead
//     bytes reclaimed with their volumes.
package chunk

import (
	"crypto/sha256"
	"encoding/hex"
)

// Hash is a chunk's content address (SHA-256).
type Hash [32]byte

// Sum returns the content address of p.
func Sum(p []byte) Hash { return sha256.Sum256(p) }

// String renders the short (8-byte) form used in logs and listings.
func (h Hash) String() string { return hex.EncodeToString(h[:8]) }

// Params configures the splitter's chunk-size distribution. Cuts are
// content-defined between Min and Max with mean near Avg.
type Params struct {
	Min, Avg, Max int
}

// DefaultParams is the standard backup-stream tuning: 2 KB / 8 KB /
// 32 KB, small enough that day-to-day churn stays localized, large
// enough that per-chunk overheads (hash, index entry) stay under 1%.
func DefaultParams() Params { return Params{Min: 2 << 10, Avg: 8 << 10, Max: 32 << 10} }

// norm applies defaults and clamps degenerate configurations.
func (p Params) norm() Params {
	d := DefaultParams()
	if p.Min <= 0 {
		p.Min = d.Min
	}
	if p.Avg <= 0 {
		p.Avg = d.Avg
	}
	if p.Max <= 0 {
		p.Max = d.Max
	}
	if p.Avg < p.Min {
		p.Avg = p.Min
	}
	if p.Max < p.Avg {
		p.Max = p.Avg
	}
	return p
}

// Loc addresses one stored chunk on chunk media: a volume label plus a
// position whose meaning belongs to the media implementation (raw
// record index on tape, byte offset in a chunk-store file).
type Loc struct {
	Volume string
	Index  int64
}

// Entry is the chunk index's record for one stored chunk: where the
// current copy lives and how to undo its encoding. Entries are
// journaled in the catalog (kind chunk-index); for one hash the
// latest journaled entry wins, which is what lets reverse dedup
// redirect every older manifest by appending a superseding entry.
type Entry struct {
	Hash       Hash
	RawLen     uint32 // chunk length before compression
	StoredLen  uint32 // bytes on media
	Compressed bool   // deflate applied (false = stored raw)
	Loc        Loc
}

// Ref is one manifest entry: the i-th chunk of a dedup-encoded stream,
// by content address. RawLen is carried so restore can size buffers
// and accounting can total a stream without index lookups.
type Ref struct {
	Hash   Hash
	RawLen uint32
}

// Manifest describes one complete dedup-encoded stream: the ordered
// chunk refs that reconstitute it, plus the accounting the catalog
// listing shows (logical stream bytes vs. unique bytes this set
// actually added to media).
type Manifest struct {
	Refs []Ref
	// RawBytes is the logical stream length (sum of ref RawLens).
	RawBytes int64
	// StoredBytes is what this stream wrote to media: unique new
	// chunks after compression (plus reverse-mode rewrites). Dedup hits
	// contribute zero.
	StoredBytes int64
}

// Lookup is the read side of the chunk index.
type Lookup interface {
	// LookupChunk returns the current stored location of a chunk.
	LookupChunk(h Hash) (Entry, bool)
}

// Index is the chunk writer's view of the backup catalog: lookups plus
// durable journaling of newly stored chunks. *catalog.Catalog
// implements it.
type Index interface {
	Lookup
	// CommitChunks durably records newly stored chunks (latest entry
	// wins per hash). Called from Writer.Sync, i.e. at engine
	// checkpoints, and at Close.
	CommitChunks(entries []Entry) error
}

// Media is append-only chunk storage. Append must consume data before
// returning (the caller reuses the buffer); ReadAt returns the exact
// bytes appended at loc.
type Media interface {
	Append(data []byte) (Loc, error)
	ReadAt(loc Loc) ([]byte, error)
}

// Eraser is optionally implemented by media that can erase individual
// chunks in place (the catalog sweep calls it for zero-ref chunks).
// Media without it reclaim dead bytes at volume granularity instead.
type Eraser interface {
	Erase(loc Loc) error
}

// Syncer is optionally implemented by media with write-behind
// buffering; Sync returns once every appended chunk is durable. The
// Writer calls it before journaling index entries, so the journal
// never references bytes that aren't on media.
type Syncer interface {
	Sync() error
}
