package chunk_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"repro/internal/chunk"
)

// memIndex is a test chunk index with commit counting.
type memIndex struct {
	m       map[chunk.Hash]chunk.Entry
	commits int
	fail    error // next CommitChunks fails with this
}

func newMemIndex() *memIndex { return &memIndex{m: make(map[chunk.Hash]chunk.Entry)} }

func (ix *memIndex) LookupChunk(h chunk.Hash) (chunk.Entry, bool) {
	e, ok := ix.m[h]
	return e, ok
}

func (ix *memIndex) CommitChunks(es []chunk.Entry) error {
	if ix.fail != nil {
		err := ix.fail
		ix.fail = nil
		return err
	}
	ix.commits++
	for _, e := range es {
		ix.m[e.Hash] = e
	}
	return nil
}

// dedupable builds a stream with internal redundancy and compressible
// regions: draws from a small pool of 64 KB blocks (half random, half
// periodic text), so repeated draws produce spans long enough that
// their interior chunks align and dedup.
func dedupable(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	pool := make([][]byte, 12)
	for i := range pool {
		b := make([]byte, 64<<10)
		if i%2 == 0 {
			rng.Read(b)
		} else {
			phrase := fmt.Sprintf("block %d: the quick brown fox jumps over the lazy dog; ", i)
			for j := range b {
				b[j] = phrase[j%len(phrase)]
			}
		}
		pool[i] = b
	}
	var out []byte
	for len(out) < n {
		out = append(out, pool[rng.Intn(len(pool))]...)
	}
	return out[:n]
}

// writeStream pushes data through a Writer in 10 KB records.
func writeStream(t *testing.T, w *chunk.Writer, data []byte) chunk.Manifest {
	t.Helper()
	for off := 0; off < len(data); off += 10240 {
		end := off + 10240
		if end > len(data) {
			end = len(data)
		}
		if err := w.WriteRecord(data[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	m, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// readStream drains a Reader back into one buffer.
func readStream(t *testing.T, r *chunk.Reader) []byte {
	t.Helper()
	var out []byte
	for {
		rec, err := r.ReadRecord()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(rec) > chunk.RecordBytes || len(rec) == 0 {
			t.Fatalf("record of %d bytes", len(rec))
		}
		out = append(out, rec...)
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	ix := newMemIndex()
	media := chunk.NewMemMedia("m0")
	data := dedupable(1, 1<<20)

	w, err := chunk.NewWriter(chunk.WriterOptions{Index: ix, Media: media})
	if err != nil {
		t.Fatal(err)
	}
	m := writeStream(t, w, data)

	if m.RawBytes != int64(len(data)) {
		t.Fatalf("manifest raw %d, want %d", m.RawBytes, len(data))
	}
	st := w.Stats()
	if st.Hits == 0 {
		t.Fatal("redundant stream produced no dedup hits")
	}
	if st.CompressedChunks == 0 || st.RawChunks == 0 {
		t.Fatalf("want both compressed and raw-stored chunks, got %d/%d", st.CompressedChunks, st.RawChunks)
	}
	if m.StoredBytes >= int64(len(data)) {
		t.Fatalf("dedup+compression stored %d of %d raw bytes", m.StoredBytes, len(data))
	}
	if media.StoredBytes() != m.StoredBytes {
		t.Fatalf("media holds %d bytes, manifest claims %d", media.StoredBytes(), m.StoredBytes)
	}

	got := readStream(t, chunk.NewReader(ix, media, m))
	if !bytes.Equal(got, data) {
		t.Fatal("restored stream differs from input")
	}
}

// TestDedupAcrossStreams: a second, mostly-identical stream must skip
// nearly all media writes — the "hits skip tape writes" contract.
func TestDedupAcrossStreams(t *testing.T) {
	ix := newMemIndex()
	media := chunk.NewMemMedia("m0")
	data := dedupable(2, 1<<20)

	w1, _ := chunk.NewWriter(chunk.WriterOptions{Index: ix, Media: media})
	writeStream(t, w1, data)

	// Day two: a small edit in the middle.
	edited := append([]byte(nil), data...)
	copy(edited[500_000:], []byte("a few changed bytes in one file"))

	before := media.StoredBytes()
	w2, _ := chunk.NewWriter(chunk.WriterOptions{Index: ix, Media: media})
	m2 := writeStream(t, w2, edited)
	added := media.StoredBytes() - before

	if ratio := float64(len(edited)) / float64(added+1); ratio < 10 {
		t.Fatalf("second full stored %d of %d bytes (ratio %.1f); dedup broken", added, len(edited), ratio)
	}
	st := w2.Stats()
	if st.Rewrites != 0 {
		t.Fatalf("forward mode performed %d rewrites", st.Rewrites)
	}

	got := readStream(t, chunk.NewReader(ix, media, m2))
	if !bytes.Equal(got, edited) {
		t.Fatal("second stream restored wrong")
	}
}

// TestReverseDedup: in reverse mode the new stream's chunks all land
// on current media (rewrites instead of references), the index is
// redirected, and BOTH streams still restore byte-identical.
func TestReverseDedup(t *testing.T) {
	ix := newMemIndex()
	old := chunk.NewMemMedia("day1")
	data := dedupable(3, 512<<10)

	w1, _ := chunk.NewWriter(chunk.WriterOptions{Index: ix, Media: old})
	m1 := writeStream(t, w1, data)

	// Day two, reverse mode, on fresh media.
	cur := chunk.NewMemMedia("day2")
	edited := append([]byte(nil), data...)
	copy(edited[100_000:], []byte("reverse-mode edit"))
	w2, _ := chunk.NewWriter(chunk.WriterOptions{Index: ix, Media: cur, Reverse: true})
	m2 := writeStream(t, w2, edited)

	st := w2.Stats()
	if st.Rewrites == 0 {
		t.Fatal("reverse mode rewrote nothing")
	}
	if st.Hits == 0 {
		t.Fatal("within-stream duplicates should still hit")
	}
	// Every cross-set chunk was superseded: the index must point every
	// one of the new manifest's refs at current media.
	for _, ref := range m2.Refs {
		e, ok := ix.LookupChunk(ref.Hash)
		if !ok {
			t.Fatalf("ref %s missing from index", ref.Hash)
		}
		if e.Loc.Volume != "day2" {
			t.Fatalf("ref %s still points at %s; reverse dedup must keep the newest stream contiguous", ref.Hash, e.Loc.Volume)
		}
	}

	// The new stream reads back from current media alone...
	got2 := readStream(t, chunk.NewReader(ix, cur, m2))
	if !bytes.Equal(got2, edited) {
		t.Fatal("latest stream restored wrong")
	}
	// ...and the OLD manifest transparently redirects to the new
	// copies for shared chunks (its unique chunks stay on old media).
	both := fanoutMedia{"day1": old, "day2": cur}
	got1 := readStream(t, chunk.NewReader(ix, both, m1))
	if !bytes.Equal(got1, data) {
		t.Fatal("old stream restored wrong after reverse dedup redirected it")
	}
}

// fanoutMedia routes reads by volume label (restore across media
// generations).
type fanoutMedia map[string]*chunk.MemMedia

func (f fanoutMedia) Append(data []byte) (chunk.Loc, error) {
	return chunk.Loc{}, errors.New("read-only")
}

func (f fanoutMedia) ReadAt(loc chunk.Loc) ([]byte, error) {
	m, ok := f[loc.Volume]
	if !ok {
		return nil, errors.New("no such volume: " + loc.Volume)
	}
	return m.ReadAt(loc)
}

// TestSyncStagesEntries: entries become visible to other writers only
// after Sync (the checkpoint hook) or Close journals them.
func TestSyncStagesEntries(t *testing.T) {
	ix := newMemIndex()
	media := chunk.NewMemMedia("m0")
	w, _ := chunk.NewWriter(chunk.WriterOptions{Index: ix, Media: media})

	data := dedupable(4, 256<<10)
	for off := 0; off < len(data); off += 10240 {
		end := off + 10240
		if end > len(data) {
			end = len(data)
		}
		if err := w.WriteRecord(data[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	if ix.commits != 0 {
		t.Fatal("entries journaled before any Sync")
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if ix.commits != 1 || len(ix.m) == 0 {
		t.Fatalf("Sync journaled nothing (%d commits, %d entries)", ix.commits, len(ix.m))
	}
	mid := len(ix.m)
	if _, err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if len(ix.m) < mid {
		t.Fatal("Close lost entries")
	}
}

// TestReaderDetectsCorruption: a flipped bit on media must surface as
// a hash mismatch, never as silently wrong bytes.
func TestReaderDetectsCorruption(t *testing.T) {
	ix := newMemIndex()
	media := chunk.NewMemMedia("m0")
	data := dedupable(5, 128<<10)
	w, _ := chunk.NewWriter(chunk.WriterOptions{Index: ix, Media: media})
	m := writeStream(t, w, data)

	// Corrupt one stored chunk via the index's own entry.
	var victim chunk.Entry
	for _, e := range ix.m {
		victim = e
		break
	}
	raw, err := media.ReadAt(victim.Loc)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0xff
	if err := media.Erase(victim.Loc); err != nil {
		t.Fatal(err)
	}
	// Re-append corrupted bytes and redirect the index entry at them.
	loc, err := media.Append(raw)
	if err != nil {
		t.Fatal(err)
	}
	victim.Loc = loc
	ix.m[victim.Hash] = victim

	r := chunk.NewReader(ix, media, m)
	for {
		_, err := r.ReadRecord()
		if err == io.EOF {
			t.Fatal("corrupt chunk restored without error")
		}
		if err != nil {
			return // detected — good
		}
	}
}

// TestWriterMediaFailure: a failing media append surfaces to the
// engine as a write error (which the engines turn into a checkpointed
// failure), and entries staged before the failure are still
// committable by Sync.
func TestWriterMediaFailure(t *testing.T) {
	ix := newMemIndex()
	media := chunk.NewMemMedia("m0")
	media.FailAfter = 10
	w, _ := chunk.NewWriter(chunk.WriterOptions{Index: ix, Media: media})

	data := dedupable(6, 1 << 20)
	var werr error
	for off := 0; off < len(data) && werr == nil; off += 10240 {
		end := off + 10240
		if end > len(data) {
			end = len(data)
		}
		werr = w.WriteRecord(data[off:end])
	}
	if werr == nil {
		t.Fatal("media failure never surfaced")
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if len(ix.m) == 0 {
		t.Fatal("pre-failure chunks were not committable")
	}
}
