package chunk

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/obs"
)

// WriterStats counts one stream's dedup outcomes.
type WriterStats struct {
	Chunks   int64 // chunks the stream split into
	Hits     int64 // chunks already on media (writes skipped)
	Misses   int64 // new chunks stored
	Rewrites int64 // reverse mode: old-set hits rewritten to current media

	RawBytes    int64 // logical stream bytes
	HitBytes    int64 // raw bytes not written thanks to dedup
	StoredBytes int64 // bytes appended to media (after compression)

	CompressedChunks int64 // stored deflated
	RawChunks        int64 // stored raw (incompressible)
}

// WriterOptions configures a dedup Writer.
type WriterOptions struct {
	// Params tunes the splitter (zero value = DefaultParams).
	Params Params
	// Index is the chunk index (the backup catalog).
	Index Index
	// Media is where new chunks are appended.
	Media Media
	// Reverse selects RevDedup: a hit against an older set is
	// rewritten to current media and the index entry superseded, so
	// this stream stays contiguous and restores at streaming rate,
	// while older manifests transparently redirect to the new copy.
	// Off (forward dedup), hits skip media writes entirely.
	Reverse bool
	// Ctx supplies the obs metrics registry (may be nil/background).
	Ctx context.Context
	// Engine labels the obs series ("logical", "image", ...).
	Engine string
}

// Writer is a dedup-compressing dumpfmt.Sink: it splits the incoming
// dump stream into content-defined chunks, skips chunks the index
// already holds, compresses and stores the rest, and accumulates the
// stream's manifest. Close returns the manifest; the caller journals
// it (catalog.AppendManifest) alongside the dump set.
//
// Sync (the dumpfmt.Syncer hook the engines call after checkpoint
// markers) flushes media and journals the entries staged so far, so a
// crash mid-dump leaves every journaled chunk reusable: the retry's
// dedup hits skip exactly the work already done. The manifest itself
// is journaled only at completion — a torn dedup dump has no set, and
// its orphaned chunks are zero-ref until the retry claims them (or a
// sweep erases them).
type Writer struct {
	split   *Splitter
	index   Index
	media   Media
	reverse bool

	staged   []Entry       // stored but not yet journaled
	own      map[Hash]bool // hashes referenced by this stream already
	manifest Manifest
	stats    WriterStats
	closed   bool

	mHits, mMisses, mSaved, mRaw, mStored, mRewrites *obs.Counter
}

// NewWriter creates a dedup writer. Index and Media are required.
func NewWriter(opts WriterOptions) (*Writer, error) {
	if opts.Index == nil || opts.Media == nil {
		return nil, errors.New("chunk: NewWriter needs an Index and a Media")
	}
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	m := obs.MetricsFrom(ctx)
	l := obs.Labels{"engine": opts.Engine}
	return &Writer{
		split:     NewSplitter(opts.Params),
		index:     opts.Index,
		media:     opts.Media,
		reverse:   opts.Reverse,
		own:       make(map[Hash]bool),
		mHits:     m.Counter("chunk_hits_total", l),
		mMisses:   m.Counter("chunk_misses_total", l),
		mSaved:    m.Counter("chunk_bytes_saved_total", l),
		mRaw:      m.Counter("chunk_raw_bytes_total", l),
		mStored:   m.Counter("chunk_stored_bytes_total", l),
		mRewrites: m.Counter("chunk_rewrites_total", l),
	}, nil
}

// WriteRecord implements dumpfmt.Sink (and physical.Sink): the record
// joins the chunking stream. Chunk media manages its own volumes, so
// end-of-media never surfaces to the engine.
func (w *Writer) WriteRecord(data []byte) error {
	if w.closed {
		return errors.New("chunk: write on closed Writer")
	}
	return w.split.Write(data, w.onChunk)
}

// NextVolume implements dumpfmt.Sink. Chunk media spans volumes
// internally, so the engine never sees end-of-media and this is only
// reachable through engine-driven volume policies; it is a no-op.
func (w *Writer) NextVolume() error { return nil }

// Sync implements dumpfmt.Syncer: flush chunk media, then journal the
// staged index entries. Called by both engines after checkpoint
// markers. The partial chunk still in the splitter is intentionally
// NOT forced out — cutting at checkpoint offsets would make chunk
// boundaries depend on checkpoint cadence and wreck cross-set dedup;
// a torn dump redoes from scratch anyway (cheaply, via hits).
func (w *Writer) Sync() error {
	if sy, ok := w.media.(Syncer); ok {
		if err := sy.Sync(); err != nil {
			return err
		}
	}
	if len(w.staged) == 0 {
		return nil
	}
	if err := w.index.CommitChunks(w.staged); err != nil {
		return err
	}
	w.staged = w.staged[:0]
	return nil
}

// Close cuts the final chunk, journals remaining entries and returns
// the stream's manifest.
func (w *Writer) Close() (Manifest, error) {
	if w.closed {
		return Manifest{}, errors.New("chunk: Close on closed Writer")
	}
	w.closed = true
	defer w.split.Close()
	if err := w.split.Flush(w.onChunk); err != nil {
		return Manifest{}, err
	}
	if err := w.Sync(); err != nil {
		return Manifest{}, err
	}
	return w.manifest, nil
}

// Stats returns the stream's dedup counters so far.
func (w *Writer) Stats() WriterStats { return w.stats }

// onChunk dedups, compresses and stores one chunk.
func (w *Writer) onChunk(data []byte) error {
	h := Sum(data)
	n := int64(len(data))
	w.stats.Chunks++
	w.stats.RawBytes += n
	w.mRaw.Add(n)
	w.manifest.Refs = append(w.manifest.Refs, Ref{Hash: h, RawLen: uint32(len(data))})
	w.manifest.RawBytes += n

	if w.own[h] {
		// Seen earlier in this same stream: always a pure hit — the
		// copy is already on current media (or staged for it).
		w.hit(n)
		return nil
	}
	if _, ok := w.index.LookupChunk(h); ok {
		if !w.reverse {
			w.own[h] = true
			w.hit(n)
			return nil
		}
		// Reverse dedup: rewrite the chunk into this stream's media
		// region. The superseding index entry redirects every older
		// manifest here, the old copy becomes dead bytes, and this —
		// the newest — stream stays contiguous.
		w.stats.Rewrites++
		w.mRewrites.Inc()
		return w.store(h, data)
	}
	w.stats.Misses++
	w.mMisses.Inc()
	return w.store(h, data)
}

// hit accounts one dedup hit of n raw bytes.
func (w *Writer) hit(n int64) {
	w.stats.Hits++
	w.stats.HitBytes += n
	w.mHits.Inc()
	w.mSaved.Add(n)
}

// store compresses and appends one new (or rewritten) chunk.
func (w *Writer) store(h Hash, data []byte) error {
	stored := data
	compressed := false
	if c := compress(data); c != nil {
		stored = c
		compressed = true
		w.stats.CompressedChunks++
	} else {
		w.stats.RawChunks++
	}
	loc, err := w.media.Append(stored)
	if err != nil {
		return fmt.Errorf("chunk: storing %s: %w", h, err)
	}
	w.staged = append(w.staged, Entry{
		Hash:       h,
		RawLen:     uint32(len(data)),
		StoredLen:  uint32(len(stored)),
		Compressed: compressed,
		Loc:        loc,
	})
	w.own[h] = true
	w.stats.StoredBytes += int64(len(stored))
	w.mStored.Add(int64(len(stored)))
	w.manifest.StoredBytes += int64(len(stored))
	return nil
}
