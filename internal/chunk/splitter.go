package chunk

import (
	"math/bits"

	"repro/internal/bufpool"
)

// gearWindow is the rolling hash's effective window: h = h<<1 + g[b]
// shifts every contribution left once per byte, so after 64 bytes a
// byte's bits have left the accumulator entirely (addition carries
// only move upward). Bytes further back than this cannot affect a cut
// decision, which is what makes the min-skip optimization exact.
const gearWindow = 64

// gearTable maps byte values to the random 64-bit keys the rolling
// hash mixes in. It is generated deterministically (splitmix64 from a
// fixed seed) because chunk boundaries are an on-media contract:
// changing the table would break dedup against every existing set.
var gearTable = func() [256]uint64 {
	var t [256]uint64
	s := uint64(0x9e3779b97f4a7c15)
	for i := range t {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		t[i] = z ^ (z >> 31)
	}
	return t
}()

// Splitter cuts a byte stream into content-defined chunks: a cut
// happens where the rolling hash's low bits are all zero (expected
// once per 2^bits bytes), no earlier than Min and no later than Max
// bytes into the chunk. Boundaries depend only on the local bytes, so
// an edit reshapes only nearby chunks and the rest of the stream
// dedups against prior sets.
//
// The splitter is zero-copy where it can be: a chunk that begins and
// ends within one Write call is emitted as a subslice of the input;
// only chunks spanning calls are assembled in a pooled carry buffer.
// Emitted slices are valid only until the callback returns.
type Splitter struct {
	min, max int
	mask     uint64

	h        uint64  // rolling hash of the current chunk's tail
	n        int     // bytes accumulated in the current chunk
	carry    *[]byte // pooled buffer for chunks spanning Write calls
	carryLen int
}

// NewSplitter creates a splitter with p (zero fields take defaults).
func NewSplitter(p Params) *Splitter {
	p = p.norm()
	// The first cut test happens at Min, then one chance per byte at
	// 2^-bits odds: E[chunk] ≈ Min + 2^bits, so aim 2^bits at Avg-Min.
	span := p.Avg - p.Min
	if span < 1 {
		span = 1
	}
	b := bits.Len(uint(span)) - 1
	if uint(span)&(uint(span)>>1) != 0 { // round up when closer to the next power
		b++
	}
	if b < 1 {
		b = 1
	}
	return &Splitter{min: p.Min, max: p.Max, mask: 1<<b - 1}
}

// Write feeds p through the splitter, calling emit for every completed
// chunk. The emitted slice may alias p or the internal carry buffer
// and must be consumed before emit returns.
func (s *Splitter) Write(p []byte, emit func(chunk []byte) error) error {
	start := 0 // where the in-progress chunk begins within p
	i := 0
	for i < len(p) {
		// Bytes this far from a possible cut can't affect the hash
		// (gearWindow) or host a boundary (min): skip them unhashed.
		if skip := s.min - gearWindow - s.n; skip > 0 {
			if skip > len(p)-i {
				skip = len(p) - i
			}
			i += skip
			s.n += skip
			continue
		}
		s.h = s.h<<1 + gearTable[p[i]]
		i++
		s.n++
		if s.n >= s.min && (s.h&s.mask == 0 || s.n >= s.max) {
			if err := s.cut(p[start:i], emit); err != nil {
				return err
			}
			start = i
		}
	}
	if start < len(p) {
		s.stash(p[start:])
	}
	return nil
}

// Flush emits the final partial chunk, if any, and resets the
// splitter for a new stream.
func (s *Splitter) Flush(emit func(chunk []byte) error) error {
	if s.carryLen == 0 {
		s.h, s.n = 0, 0
		return nil
	}
	chunk := (*s.carry)[:s.carryLen]
	s.h, s.n, s.carryLen = 0, 0, 0
	return emit(chunk)
}

// Close releases the carry buffer. The splitter may be reused after
// Close (a fresh buffer is pooled on demand).
func (s *Splitter) Close() {
	if s.carry != nil {
		bufpool.Put(s.carry)
		s.carry = nil
	}
}

// cut completes the current chunk with tail and emits it.
func (s *Splitter) cut(tail []byte, emit func([]byte) error) error {
	chunk := tail
	if s.carryLen > 0 {
		s.stash(tail)
		chunk = (*s.carry)[:s.carryLen]
	}
	s.h, s.n, s.carryLen = 0, 0, 0
	return emit(chunk)
}

// stash appends p to the carry buffer (the chunk will complete in a
// later Write call).
func (s *Splitter) stash(p []byte) {
	if s.carry == nil {
		s.carry = bufpool.Get(s.max)
	}
	copy((*s.carry)[s.carryLen:], p)
	s.carryLen += len(p)
}
