package chunk

import (
	"bytes"
	"math/rand"
	"testing"
)

// split runs data through a fresh splitter in writeSize slices and
// returns the chunks (copied).
func split(t testing.TB, p Params, data []byte, writeSize int) [][]byte {
	t.Helper()
	s := NewSplitter(p)
	defer s.Close()
	var chunks [][]byte
	emit := func(c []byte) error {
		chunks = append(chunks, append([]byte(nil), c...))
		return nil
	}
	for off := 0; off < len(data); off += writeSize {
		end := off + writeSize
		if end > len(data) {
			end = len(data)
		}
		if err := s.Write(data[off:end], emit); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(emit); err != nil {
		t.Fatal(err)
	}
	return chunks
}

func TestSplitterReassembly(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 1<<20)
	rng.Read(data)
	p := DefaultParams()
	chunks := split(t, p, data, 10240)

	var joined []byte
	for i, c := range chunks {
		if len(c) > p.Max {
			t.Fatalf("chunk %d: %d bytes exceeds max %d", i, len(c), p.Max)
		}
		if len(c) < p.Min && i != len(chunks)-1 {
			t.Fatalf("chunk %d: %d bytes under min %d (only the final chunk may be short)", i, len(c), p.Min)
		}
		joined = append(joined, c...)
	}
	if !bytes.Equal(joined, data) {
		t.Fatal("chunks do not reassemble the input")
	}

	// The mean should land in the neighborhood of Avg — this is a
	// distribution property, so the bound is loose but catches a mask
	// off by orders of magnitude.
	mean := len(data) / len(chunks)
	if mean < p.Min || mean > 3*p.Avg {
		t.Fatalf("mean chunk %d bytes; want within [%d, %d]", mean, p.Min, 3*p.Avg)
	}
}

// TestSplitterWriteSizeIndependence: chunk boundaries are a property
// of the content, not of how the stream is sliced into Write calls —
// the contract that makes dedup work across engines whose record
// sizes differ.
func TestSplitterWriteSizeIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	data := make([]byte, 512<<10)
	rng.Read(data)
	want := split(t, Params{}, data, len(data))
	for _, ws := range []int{1, 37, 1024, 10240, 65536} {
		got := split(t, Params{}, data, ws)
		if len(got) != len(want) {
			t.Fatalf("write size %d: %d chunks, want %d", ws, len(got), len(want))
		}
		for i := range got {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("write size %d: chunk %d differs", ws, i)
			}
		}
	}
}

// TestSplitterShiftResistance: inserting bytes near the front of the
// stream must disturb only nearby boundaries; the bulk of the chunks
// re-align and dedup. (A fixed-block splitter would share none.)
func TestSplitterShiftResistance(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	data := make([]byte, 1<<20)
	rng.Read(data)
	shifted := append(append([]byte{}, []byte("insertion at the front")...), data...)

	base := split(t, Params{}, data, 10240)
	moved := split(t, Params{}, shifted, 10240)

	seen := make(map[Hash]bool, len(base))
	for _, c := range base {
		seen[Sum(c)] = true
	}
	shared := 0
	for _, c := range moved {
		if seen[Sum(c)] {
			shared++
		}
	}
	if min := len(base) * 9 / 10; shared < min {
		t.Fatalf("only %d/%d chunks survived a front insertion; want >= %d", shared, len(moved), min)
	}
}

// TestSplitterDeterminism: same bytes, same cuts, run to run — the
// gear table is a fixed on-media contract.
func TestSplitterDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	data := make([]byte, 256<<10)
	rng.Read(data)
	a := split(t, Params{}, data, 4096)
	b := split(t, Params{}, data, 4096)
	if len(a) != len(b) {
		t.Fatalf("%d vs %d chunks across runs", len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("chunk %d differs across runs", i)
		}
	}
}

func TestSplitterEmptyAndTiny(t *testing.T) {
	if got := split(t, Params{}, nil, 1024); len(got) != 0 {
		t.Fatalf("empty input produced %d chunks", len(got))
	}
	tiny := []byte("shorter than min")
	got := split(t, Params{}, tiny, 1024)
	if len(got) != 1 || !bytes.Equal(got[0], tiny) {
		t.Fatalf("tiny input split wrong: %d chunks", len(got))
	}
}

// BenchmarkSplitter measures raw chunking throughput over large
// buffers (the zero-copy path); the bench -chunk report compares it
// against the zero-copy record fast path.
func BenchmarkSplitter(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	data := make([]byte, 4<<20)
	rng.Read(data)
	s := NewSplitter(Params{})
	defer s.Close()
	emit := func(c []byte) error { return nil }
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Write(data, emit); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	_ = s.Flush(emit)
}

// BenchmarkSplitterRecords feeds the splitter dump-sized (10 KB)
// records, the shape the dedup sink actually sees.
func BenchmarkSplitterRecords(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	data := make([]byte, 4<<20)
	rng.Read(data)
	s := NewSplitter(Params{})
	defer s.Close()
	emit := func(c []byte) error { return nil }
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for off := 0; off < len(data); off += 10240 {
			end := off + 10240
			if end > len(data) {
				end = len(data)
			}
			if err := s.Write(data[off:end], emit); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	_ = s.Flush(emit)
}
