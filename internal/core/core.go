// Package core assembles the paper's system under test: a filer — CPU,
// NVRAM, a RAID volume of simulated disks, a WAFL filesystem, and a
// bank of tape drives — together with both backup engines. It is the
// top-level API the examples, the CLI and the benchmark harness build
// on; the pieces live in their own packages (internal/wafl,
// internal/logical, internal/physical, …) and remain usable on their
// own.
package core

import (
	"context"
	"fmt"

	"repro/internal/logical"
	"repro/internal/nvram"
	"repro/internal/physical"
	"repro/internal/raid"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/tape"
	"repro/internal/vdev"
	"repro/internal/wafl"
)

// FilerConfig sizes a filer. Zero fields are completed by NewFiler.
type FilerConfig struct {
	// Name labels the filer's resources.
	Name string
	// Simulate attaches a discrete-event clock: all device and CPU
	// costs then accrue virtual time. Off, everything is untimed
	// (functional testing mode).
	Simulate bool

	// Volume geometry (the paper's home volume: 3 groups × 10 data
	// disks; rlse: 2 × 10).
	RaidGroups        int
	DataDisksPerGroup int
	BlocksPerDisk     int
	DiskParams        vdev.Params

	// Tape bank.
	TapeDrives         int
	CartridgesPerDrive int
	TapeParams         tape.Params

	// NVRAM.
	NVRAMParams nvram.Params

	// Cost models. CPU stations are filled in by NewFiler when
	// simulating.
	FSCosts   wafl.Costs
	PhysCosts physical.Costs

	// CacheBlocks and ReadAhead tune the filesystem (0 = defaults).
	CacheBlocks int
	ReadAhead   int

	// Env and CPU, when set together with Simulate, attach the filer
	// to an existing environment and CPU station — how multi-volume
	// experiments model one filer head serving several volumes.
	Env *sim.Env
	CPU *sim.Station
}

// DefaultConfig returns a laptop-scale filer shaped like the paper's
// F630: 500 MHz-class CPU costs, 10 MB/s disks in RAID-4 groups,
// DLT-7000 tapes, 32 MB NVRAM.
func DefaultConfig() FilerConfig {
	return FilerConfig{
		Name:               "filer",
		RaidGroups:         3,
		DataDisksPerGroup:  10,
		BlocksPerDisk:      4096, // 16 MB per disk; scale per experiment
		DiskParams:         vdev.DefaultParams(),
		TapeDrives:         1,
		CartridgesPerDrive: 8,
		TapeParams:         tape.DefaultParams(),
		NVRAMParams:        nvram.DefaultParams(),
		FSCosts:            wafl.DefaultCosts(),
		PhysCosts:          physical.DefaultCosts(),
	}
}

// Filer is an assembled system.
type Filer struct {
	Config FilerConfig
	Env    *sim.Env     // nil unless simulating
	CPU    *sim.Station // nil unless simulating
	Vol    *raid.Volume
	NVRAM  *nvram.Log
	FS     *wafl.FS
	Tapes  []*tape.Drive
	Dates  *logical.DumpDates
}

// DumpDatesSource is anything that can reconstruct a durable dump-date
// history — the backup catalog implements it. Declared structurally so
// core does not depend on internal/catalog.
type DumpDatesSource interface {
	DumpDates() *logical.DumpDates
}

// AttachCatalog replaces the filer's in-memory dump-date history with
// the one reconstructed from a durable catalog journal. Before this,
// Dates evaporated on process exit and every restart forced a level-0;
// with a catalog attached, incremental levels survive restarts.
func (f *Filer) AttachCatalog(src DumpDatesSource) {
	f.Dates = src.DumpDates()
}

// NewFiler builds and formats a filer.
func NewFiler(ctx context.Context, cfg FilerConfig) (*Filer, error) {
	if cfg.Name == "" {
		cfg.Name = "filer"
	}
	if cfg.RaidGroups == 0 {
		cfg.RaidGroups = 1
	}
	if cfg.DataDisksPerGroup == 0 {
		cfg.DataDisksPerGroup = 4
	}
	if cfg.BlocksPerDisk == 0 {
		cfg.BlocksPerDisk = 4096
	}
	if cfg.TapeDrives == 0 {
		cfg.TapeDrives = 1
	}
	if cfg.CartridgesPerDrive == 0 {
		cfg.CartridgesPerDrive = 8
	}

	f := &Filer{Config: cfg, Dates: logical.NewDumpDates()}
	if cfg.Simulate {
		f.Env = cfg.Env
		f.CPU = cfg.CPU
		if f.Env == nil {
			f.Env = sim.NewEnv()
		}
		if f.CPU == nil {
			f.CPU = sim.NewStation(f.Env, cfg.Name+"/cpu", 0)
		}
		cfg.FSCosts.CPU = f.CPU
		cfg.PhysCosts.CPU = f.CPU
	}
	var err error
	f.Vol, err = raid.Build(f.Env, cfg.Name+"/vol", raid.Config{
		Groups:            cfg.RaidGroups,
		DataDisksPerGroup: cfg.DataDisksPerGroup,
		BlocksPerDisk:     cfg.BlocksPerDisk,
		DiskParams:        cfg.DiskParams,
	})
	if err != nil {
		return nil, err
	}
	f.NVRAM = nvram.New(f.Env, cfg.NVRAMParams)
	f.FS, err = wafl.Mkfs(ctx, f.Vol, f.NVRAM, wafl.Options{
		Costs:       cfg.FSCosts,
		Env:         f.Env,
		CacheBlocks: cfg.CacheBlocks,
		ReadAhead:   cfg.ReadAhead,
	})
	if err != nil {
		return nil, err
	}
	f.Config = cfg
	for i := 0; i < cfg.TapeDrives; i++ {
		d := tape.NewDrive(f.Env, fmt.Sprintf("%s/tape%d", cfg.Name, i), cfg.TapeParams)
		for c := 0; c < cfg.CartridgesPerDrive; c++ {
			d.AddCartridges(tape.NewCartridge(fmt.Sprintf("%s-t%d-c%d", cfg.Name, i, c)))
		}
		f.Tapes = append(f.Tapes, d)
	}
	return f, nil
}

// Wipe reformats the filer's volume with a fresh, empty filesystem —
// the disaster-recovery starting point for a full restore.
func (f *Filer) Wipe(ctx context.Context) error {
	f.NVRAM.Reset()
	fs, err := wafl.Mkfs(ctx, f.Vol, f.NVRAM, wafl.Options{
		Costs:       f.Config.FSCosts,
		Env:         f.Env,
		CacheBlocks: f.Config.CacheBlocks,
		ReadAhead:   f.Config.ReadAhead,
	})
	if err != nil {
		return err
	}
	f.FS = fs
	return nil
}

// Remount re-reads the on-disk filesystem state into a fresh FS — the
// step after an image restore wrote blocks underneath the mounted
// filesystem.
func (f *Filer) Remount(ctx context.Context) error {
	f.NVRAM.Reset()
	fs, err := wafl.Mount(ctx, f.Vol, f.NVRAM, wafl.Options{
		Costs:       f.Config.FSCosts,
		Env:         f.Env,
		CacheBlocks: f.Config.CacheBlocks,
		ReadAhead:   f.Config.ReadAhead,
	})
	if err != nil {
		return err
	}
	f.FS = fs
	return nil
}

// Sink returns a dump sink on tape drive i for the process in ctx.
func (f *Filer) Sink(ctx context.Context, drive int) *logical.DriveSink {
	return &logical.DriveSink{Drive: f.Tapes[drive], Proc: sim.ProcFrom(ctx)}
}

// Source returns a restore source on tape drive i.
func (f *Filer) Source(ctx context.Context, drive int) *logical.DriveSource {
	return logical.NewDriveSource(f.Tapes[drive], sim.ProcFrom(ctx), 0)
}

// LoadTape mounts the next cartridge in drive i's stacker.
func (f *Filer) LoadTape(ctx context.Context, drive int) error {
	return f.Tapes[drive].Load(sim.ProcFrom(ctx))
}

// LogicalDump snapshots the filesystem and runs a level-`level`
// logical dump of subtree (or "" for everything) to tape drive
// `drive`. The snapshot is deleted afterwards, matching the measured
// procedure of the paper's Table 3 (create snapshot … dump … delete
// snapshot).
func (f *Filer) LogicalDump(ctx context.Context, drive, level int, subtree, snapName string, stages logical.StageRecorder) (*logical.DumpStats, error) {
	if err := f.FS.CreateSnapshot(ctx, snapName); err != nil {
		return nil, err
	}
	defer f.FS.DeleteSnapshot(ctx, snapName)
	view, err := f.FS.SnapshotView(snapName)
	if err != nil {
		return nil, err
	}
	stats, err := logical.Dump(ctx, logical.DumpOptions{
		View:      view,
		Level:     level,
		Dates:     f.Dates,
		FSID:      f.Config.Name + subtree,
		Subtree:   subtree,
		Sink:      f.Sink(ctx, drive),
		Label:     snapName,
		ReadAhead: 16,
		Stages:    stages,
	})
	if err != nil {
		return nil, err
	}
	f.Tapes[drive].Flush(sim.ProcFrom(ctx))
	return stats, nil
}

// LogicalRestore reads a dump stream from drive into this filer's
// filesystem under target.
func (f *Filer) LogicalRestore(ctx context.Context, drive int, target string, syncDeletes bool, stages logical.StageRecorder) (*logical.RestoreStats, error) {
	f.Tapes[drive].Rewind(sim.ProcFrom(ctx))
	return logical.Restore(ctx, logical.RestoreOptions{
		FS:               f.FS,
		Source:           f.Source(ctx, drive),
		TargetDir:        target,
		SyncDeletes:      syncDeletes,
		KernelIntegrated: true,
		Stages:           stages,
	})
}

// ImageDump snapshots the filesystem and image-dumps it to drive;
// baseSnap non-empty makes it incremental (the base snapshot must
// still exist). Unlike LogicalDump the snapshot is kept: it is the
// base of the next incremental.
func (f *Filer) ImageDump(ctx context.Context, drive int, snapName, baseSnap string) (*physical.DumpStats, error) {
	if err := f.FS.CreateSnapshot(ctx, snapName); err != nil {
		return nil, err
	}
	stats, err := physical.Dump(ctx, physical.DumpOptions{
		FS:           f.FS,
		Vol:          f.Vol,
		SnapName:     snapName,
		BaseSnapName: baseSnap,
		Sink:         f.Sink(ctx, drive),
		Costs:        f.Config.PhysCosts,
	})
	if err != nil {
		return nil, err
	}
	f.Tapes[drive].Flush(sim.ProcFrom(ctx))
	return stats, nil
}

// ImageRestore applies an image stream from drive to a raw volume,
// bypassing any filesystem.
func (f *Filer) ImageRestore(ctx context.Context, drive int, vol storage.Device, incremental bool) (*physical.RestoreStats, error) {
	f.Tapes[drive].Rewind(sim.ProcFrom(ctx))
	return physical.Restore(ctx, physical.RestoreOptions{
		Vol:               vol,
		Source:            f.Source(ctx, drive),
		Costs:             f.Config.PhysCosts,
		ExpectIncremental: incremental,
	})
}

// Proc returns a context carrying p so filesystem and device calls
// charge virtual time.
func Proc(ctx context.Context, p *sim.Proc) context.Context { return sim.WithProc(ctx, p) }
