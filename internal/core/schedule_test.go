package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestSnapshotSchedulerRotation(t *testing.T) {
	f := newTestFiler(t, true, 1)
	if _, err := f.FS.WriteFile(ctx, "/genesis.txt", []byte("day zero"), 0644); err != nil {
		t.Fatal(err)
	}
	// Writers keep working while the scheduler runs, so snapshots
	// capture distinct states.
	f.Env.Spawn("writer", func(p *sim.Proc) {
		c := Proc(ctx, p)
		for i := 0; i < 18; i++ {
			p.Sleep(4 * time.Hour)
			f.FS.WriteFile(c, fmt.Sprintf("/work/h%02d.txt", i), []byte(fmt.Sprintf("hour %d", i)), 0644)
		}
	})
	errc := f.RunSnapshotScheduler(ctx, DefaultSchedule(), 72*time.Hour)
	f.Env.Run()
	if err := <-errc; err != nil {
		t.Fatal(err)
	}

	var hourly, nightly []string
	for _, s := range f.FS.Snapshots() {
		switch {
		case strings.HasPrefix(s.Name, "hourly."):
			hourly = append(hourly, s.Name)
		case strings.HasPrefix(s.Name, "nightly."):
			nightly = append(nightly, s.Name)
		}
	}
	// 72h / 4h = 18 hourly snapshots taken, 6 kept; 3 nightly taken,
	// 2 kept.
	if len(hourly) != 6 {
		t.Fatalf("hourly kept = %v, want 6", hourly)
	}
	if len(nightly) != 2 {
		t.Fatalf("nightly kept = %v, want 2", nightly)
	}
	// The oldest retained hourly must still serve reads.
	sv, err := f.FS.SnapshotView("hourly.13")
	if err != nil {
		t.Fatalf("oldest retained hourly missing: %v", err)
	}
	if _, err := sv.ReadFile(ctx, "/genesis.txt"); err != nil {
		t.Fatal(err)
	}
	// And a retired one must be gone.
	if _, err := f.FS.SnapshotView("hourly.1"); err == nil {
		t.Fatal("retired snapshot still present")
	}
	if err := f.FS.MustCheck(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotSchedulerStupidityWindow(t *testing.T) {
	// The §2.1 claim: with the schedule running, a file deleted hours
	// ago is still in a snapshot — no tape needed.
	f := newTestFiler(t, true, 1)
	f.Env.Spawn("user", func(p *sim.Proc) {
		c := Proc(ctx, p)
		f.FS.WriteFile(c, "/precious.txt", []byte("do not lose"), 0600)
		p.Sleep(10 * time.Hour)
		f.FS.RemovePath(c, "/precious.txt")
	})
	errc := f.RunSnapshotScheduler(ctx, DefaultSchedule(), 24*time.Hour)
	f.Env.Run()
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if _, err := f.FS.ActiveView().ReadFile(ctx, "/precious.txt"); err == nil {
		t.Fatal("file was not deleted")
	}
	// Snapshot hourly.2 was taken at t=8h, while the file existed.
	sv, err := f.FS.SnapshotView("hourly.2")
	if err != nil {
		t.Fatal(err)
	}
	got, err := sv.ReadFile(ctx, "/precious.txt")
	if err != nil || string(got) != "do not lose" {
		t.Fatalf("snapshot recovery failed: %q, %v", got, err)
	}
}

func TestSnapshotSchedulerNeedsSim(t *testing.T) {
	f := newTestFiler(t, false, 1)
	if err := <-f.RunSnapshotScheduler(ctx, DefaultSchedule(), time.Hour); err == nil {
		t.Fatal("scheduler ran without a clock")
	}
}
