package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/sim"
)

// SnapshotSchedule is the paper's §2.1 operational pattern: "a common
// schedule is hourly snapshots taken every 4 hours throughout the day
// and kept for 24 hours plus daily snapshots taken every night at
// midnight and kept for 2 days. With such a frequent snapshot
// schedule, snapshots provide much more protection from accidental
// deletion than is provided by daily incremental backups."
type SnapshotSchedule struct {
	// HourlyEvery is the interval between "hourly" snapshots.
	HourlyEvery time.Duration
	// HourlyKeep is how many hourly snapshots are retained.
	HourlyKeep int
	// NightlyEvery is the interval between "nightly" snapshots.
	NightlyEvery time.Duration
	// NightlyKeep is how many nightly snapshots are retained.
	NightlyKeep int
}

// DefaultSchedule returns the paper's common schedule: snapshots every
// 4 hours kept for 24 hours (6 of them) plus nightly snapshots kept
// for 2 days.
func DefaultSchedule() SnapshotSchedule {
	return SnapshotSchedule{
		HourlyEvery:  4 * time.Hour,
		HourlyKeep:   6,
		NightlyEvery: 24 * time.Hour,
		NightlyKeep:  2,
	}
}

// RunSnapshotScheduler spawns a simulated process that maintains the
// rotation until the virtual clock reaches `until`. The caller drives
// the environment (f.Env.Run()) as usual; scheduler errors surface on
// the returned channel after the run.
func (f *Filer) RunSnapshotScheduler(ctx context.Context, sched SnapshotSchedule, until time.Duration) <-chan error {
	errc := make(chan error, 1)
	if f.Env == nil {
		errc <- fmt.Errorf("core: snapshot scheduler needs a simulated filer")
		return errc
	}
	f.Env.Spawn("snap-scheduler", func(p *sim.Proc) {
		c := Proc(ctx, p)
		hourlySeq, nightlySeq := 0, 0
		nextHourly := sched.HourlyEvery
		nextNightly := sched.NightlyEvery
		var err error
		for p.Now() < sim.Time(until) && err == nil {
			// Sleep to whichever event is next.
			next := nextHourly
			if sched.NightlyEvery > 0 && (sched.HourlyEvery == 0 || nextNightly < next) {
				next = nextNightly
			}
			if next > until {
				break
			}
			p.WaitUntil(sim.Time(next))
			if sched.HourlyEvery > 0 && next == nextHourly {
				hourlySeq++
				err = rotate(c, f, "hourly", hourlySeq, sched.HourlyKeep)
				nextHourly += sched.HourlyEvery
			} else {
				nightlySeq++
				err = rotate(c, f, "nightly", nightlySeq, sched.NightlyKeep)
				nextNightly += sched.NightlyEvery
			}
		}
		errc <- err
	})
	return errc
}

// rotate creates <kind>.<seq> and retires the snapshot that fell off
// the retention window.
func rotate(ctx context.Context, f *Filer, kind string, seq, keep int) error {
	if err := f.FS.CreateSnapshot(ctx, fmt.Sprintf("%s.%d", kind, seq)); err != nil {
		return fmt.Errorf("core: scheduler creating %s.%d: %w", kind, seq, err)
	}
	if old := seq - keep; old >= 1 {
		if err := f.FS.DeleteSnapshot(ctx, fmt.Sprintf("%s.%d", kind, old)); err != nil {
			return fmt.Errorf("core: scheduler retiring %s.%d: %w", kind, old, err)
		}
	}
	return nil
}
