package core

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/wafl"
	"repro/internal/workload"
)

var ctx = context.Background()

func newTestFiler(t *testing.T, simulate bool, drives int) *Filer {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Name = "test"
	cfg.Simulate = simulate
	cfg.TapeDrives = drives
	cfg.BlocksPerDisk = 512
	f, err := NewFiler(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewFilerDefaults(t *testing.T) {
	f := newTestFiler(t, false, 1)
	if f.FS == nil || f.Vol == nil || f.NVRAM == nil || len(f.Tapes) != 1 {
		t.Fatalf("incomplete filer: %+v", f)
	}
	if f.Env != nil || f.CPU != nil {
		t.Fatal("untimed filer has a sim environment")
	}
	if f.Vol.NumBlocks() != 3*10*512 {
		t.Fatalf("volume %d blocks", f.Vol.NumBlocks())
	}
	if err := f.FS.MustCheck(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestFilerSimulatedHasClock(t *testing.T) {
	f := newTestFiler(t, true, 1)
	if f.Env == nil || f.CPU == nil {
		t.Fatal("simulated filer missing env/cpu")
	}
}

func TestFilerSharedEnvironment(t *testing.T) {
	a := newTestFiler(t, true, 1)
	cfg := DefaultConfig()
	cfg.Name = "second"
	cfg.Simulate = true
	cfg.Env = a.Env
	cfg.CPU = a.CPU
	cfg.BlocksPerDisk = 512
	b, err := NewFiler(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b.Env != a.Env || b.CPU != a.CPU {
		t.Fatal("second filer did not share the environment")
	}
}

func TestLogicalDumpRestoreViaFiler(t *testing.T) {
	f := newTestFiler(t, true, 1)
	want := []byte("filer-level roundtrip")
	if _, err := f.FS.WriteFile(ctx, "/data/x.bin", want, 0644); err != nil {
		t.Fatal(err)
	}
	var derr error
	f.Env.Spawn("cycle", func(p *sim.Proc) {
		c := Proc(ctx, p)
		if derr = f.LoadTape(c, 0); derr != nil {
			return
		}
		if _, derr = f.LogicalDump(c, 0, 0, "", "snap", nil); derr != nil {
			return
		}
	})
	f.Env.Run()
	if derr != nil {
		t.Fatal(derr)
	}
	// The dump snapshot is cleaned up afterwards.
	if len(f.FS.Snapshots()) != 0 {
		t.Fatalf("snapshots left behind: %v", f.FS.Snapshots())
	}

	if err := f.Wipe(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := f.FS.ActiveView().ReadFile(ctx, "/data/x.bin"); err == nil {
		t.Fatal("wipe left data behind")
	}
	f.Env.Spawn("restore", func(p *sim.Proc) {
		c := Proc(ctx, p)
		if _, derr = f.LogicalRestore(c, 0, "/", false, nil); derr != nil {
			return
		}
	})
	f.Env.Run()
	if derr != nil {
		t.Fatal(derr)
	}
	got, err := f.FS.ActiveView().ReadFile(ctx, "/data/x.bin")
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("restored %q, %v", got, err)
	}
}

func TestImageDumpRestoreViaFiler(t *testing.T) {
	f := newTestFiler(t, true, 1)
	workload.Generate(ctx, f.FS, workload.Spec{Seed: 61, Files: 20, DirFanout: 4, MeanFileSize: 4 << 10})
	want, _ := workload.TreeDigest(ctx, f.FS.ActiveView(), "/")

	target := storage.NewMemDevice(f.Vol.NumBlocks())
	var derr error
	f.Env.Spawn("image", func(p *sim.Proc) {
		c := Proc(ctx, p)
		if derr = f.LoadTape(c, 0); derr != nil {
			return
		}
		if _, derr = f.ImageDump(c, 0, "img", ""); derr != nil {
			return
		}
		if _, derr = f.ImageRestore(c, 0, target, false); derr != nil {
			return
		}
	})
	f.Env.Run()
	if derr != nil {
		t.Fatal(derr)
	}
	// Unlike LogicalDump, the image snapshot persists as the next base.
	if len(f.FS.Snapshots()) != 1 {
		t.Fatalf("image snapshot not retained: %v", f.FS.Snapshots())
	}
	restored, err := wafl.Mount(ctx, target, nil, wafl.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := workload.TreeDigest(ctx, restored.ActiveView(), "/")
	if diffs := workload.DiffDigests(want, got); len(diffs) > 0 {
		t.Fatalf("filer image roundtrip differs: %v", diffs[0])
	}
}

func TestWipeResetsState(t *testing.T) {
	f := newTestFiler(t, false, 1)
	f.FS.WriteFile(ctx, "/junk", make([]byte, 64<<10), 0644)
	f.FS.CreateSnapshot(ctx, "old")
	used := f.FS.UsedBlocks()
	if err := f.Wipe(ctx); err != nil {
		t.Fatal(err)
	}
	if f.FS.UsedBlocks() >= used {
		t.Fatal("wipe did not free space")
	}
	if len(f.FS.Snapshots()) != 0 {
		t.Fatal("wipe kept snapshots")
	}
	if err := f.FS.MustCheck(ctx); err != nil {
		t.Fatal(err)
	}
}
