// Package mirror builds volume replication on top of incremental
// image dumps — the paper's §6 future direction: "The image
// dump/restore technology also has potential application to remote
// mirroring and replication of volumes."
//
// A Mirror pairs a source filesystem with a target volume. The first
// Sync ships a full image; every later Sync creates a fresh source
// snapshot, ships only the block delta since the previous mirror
// snapshot (the Table 1 set difference), applies it to the target, and
// retires the older mirror snapshot. The transfer moves through a
// simulated network link so the benchmark harness can measure
// replication lag versus link bandwidth. The target is mountable
// read-only between syncs and is always a crash-consistent
// point-in-time image.
package mirror

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/physical"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/wafl"
)

// Link models the replication network: records shipped through it
// charge transfer time against a station. A nil *Link ships instantly.
type Link struct {
	station *sim.Station
	rate    float64 // bytes per second
	perRec  time.Duration
	sent    int64
}

// NewLink creates a link on env with the given bandwidth.
func NewLink(env *sim.Env, name string, bytesPerSec float64, perRecord time.Duration) *Link {
	l := &Link{rate: bytesPerSec, perRec: perRecord}
	if env != nil {
		l.station = sim.NewStation(env, name, 200*time.Millisecond)
	}
	return l
}

// Sent returns total bytes shipped.
func (l *Link) Sent() int64 {
	if l == nil {
		return 0
	}
	return l.sent
}

// pipe buffers records in memory, charging link time on write.
type pipe struct {
	link *Link
	proc *sim.Proc
	recs [][]byte
	pos  int
}

func (p *pipe) WriteRecord(data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	p.recs = append(p.recs, cp)
	if p.link != nil {
		p.link.sent += int64(len(data))
		if p.link.station != nil && p.proc != nil {
			p.link.station.Async(p.proc, p.link.perRec+sim.TimeFor(len(data), p.link.rate))
		}
	}
	return nil
}

func (p *pipe) NextVolume() error { return fmt.Errorf("mirror: network pipe has no volumes") }

// BindProc implements pipeline.ProcBinder: the dump engine's writer
// stage runs on its own simulated process and rebinds the pipe so link
// time is charged to the process actually writing.
func (p *pipe) BindProc(np *sim.Proc) *sim.Proc {
	old := p.proc
	p.proc = np
	return old
}

func (p *pipe) ReadRecord() ([]byte, error) {
	if p.pos >= len(p.recs) {
		return nil, io.EOF
	}
	r := p.recs[p.pos]
	p.pos++
	return r, nil
}

// Mirror replicates a source filesystem onto a target volume.
type Mirror struct {
	src    *wafl.FS
	srcVol storage.Device
	dst    storage.Device
	link   *Link
	costs  physical.Costs

	serial   int
	lastSnap string // the snapshot the target currently matches
	syncs    int
	blocks   int64
}

// New creates a mirror relationship. link may be nil (instant
// transfer); costs may be the zero value.
func New(src *wafl.FS, srcVol, dst storage.Device, link *Link, costs physical.Costs) *Mirror {
	return &Mirror{src: src, srcVol: srcVol, dst: dst, link: link, costs: costs}
}

// LastSnapshot returns the source snapshot the target matches, or "".
func (m *Mirror) LastSnapshot() string { return m.lastSnap }

// Stats returns syncs performed and total blocks shipped.
func (m *Mirror) Stats() (syncs int, blocks int64) { return m.syncs, m.blocks }

// Sync brings the target up to date: a full transfer the first time,
// an incremental thereafter. It returns the number of blocks shipped.
func (m *Mirror) Sync(ctx context.Context) (int, error) {
	m.serial++
	name := fmt.Sprintf("mirror.%d", m.serial)
	if err := m.src.CreateSnapshot(ctx, name); err != nil {
		return 0, err
	}
	p := &pipe{link: m.link, proc: sim.ProcFrom(ctx)}
	stats, err := physical.Dump(ctx, physical.DumpOptions{
		FS: m.src, Vol: m.srcVol,
		SnapName: name, BaseSnapName: m.lastSnap,
		Sink: p, Costs: m.costs,
	})
	if err != nil {
		m.src.DeleteSnapshot(ctx, name)
		return 0, err
	}
	_, err = physical.Restore(ctx, physical.RestoreOptions{
		Vol: m.dst, Source: p, Costs: m.costs,
		ExpectIncremental: m.lastSnap != "",
	})
	if err != nil {
		return 0, err
	}
	// Retire the previous mirror snapshot; keep the new one as the
	// next incremental's base.
	if m.lastSnap != "" {
		if err := m.src.DeleteSnapshot(ctx, m.lastSnap); err != nil {
			return 0, err
		}
	}
	m.lastSnap = name
	m.syncs++
	m.blocks += int64(stats.BlocksDumped)
	return stats.BlocksDumped, nil
}

// MountTarget mounts the replica read-only-by-convention (the caller
// must not write while mirroring continues).
func (m *Mirror) MountTarget(ctx context.Context) (*wafl.FS, error) {
	return wafl.Mount(ctx, m.dst, nil, wafl.Options{})
}
