package mirror

import (
	"context"
	"testing"
	"time"

	"repro/internal/physical"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/wafl"
	"repro/internal/workload"
)

var ctx = context.Background()

func newPair(t *testing.T, blocks int) (*wafl.FS, *storage.MemDevice, *storage.MemDevice) {
	t.Helper()
	src := storage.NewMemDevice(blocks)
	fs, err := wafl.Mkfs(ctx, src, nil, wafl.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return fs, src, storage.NewMemDevice(blocks)
}

func assertReplica(t *testing.T, m *Mirror, src *wafl.FS, snap string) {
	t.Helper()
	// Inspect a clone: mounting (and fsck's consistency point) writes
	// to the volume, which would desynchronize the mirror chain.
	replica, err := wafl.Mount(ctx, m.dst.(*storage.MemDevice).Clone(), nil, wafl.Options{})
	if err != nil {
		t.Fatalf("mounting replica: %v", err)
	}
	sv, err := src.SnapshotView(snap)
	if err != nil {
		t.Fatal(err)
	}
	want, err := workload.TreeDigest(ctx, sv, "/")
	if err != nil {
		t.Fatal(err)
	}
	got, err := workload.TreeDigest(ctx, replica.ActiveView(), "/")
	if err != nil {
		t.Fatal(err)
	}
	if diffs := workload.DiffDigests(want, got); len(diffs) > 0 {
		t.Fatalf("replica differs from %s: %v", snap, diffs[0])
	}
	if err := replica.MustCheck(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestInitialSyncReplicates(t *testing.T) {
	fs, srcDev, dstDev := newPair(t, 8192)
	workload.Generate(ctx, fs, workload.Spec{Seed: 21, Files: 40, DirFanout: 6, MeanFileSize: 8 << 10})
	m := New(fs, srcDev, dstDev, nil, physical.Costs{})
	n, err := m.Sync(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("initial sync shipped nothing")
	}
	assertReplica(t, m, fs, m.LastSnapshot())
}

func TestIncrementalSyncsShipOnlyDeltas(t *testing.T) {
	fs, srcDev, dstDev := newPair(t, 8192)
	workload.Generate(ctx, fs, workload.Spec{Seed: 22, Files: 40, DirFanout: 6, MeanFileSize: 8 << 10})
	m := New(fs, srcDev, dstDev, nil, physical.Costs{})
	full, err := m.Sync(ctx)
	if err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 4; round++ {
		fs.WriteFile(ctx, "/hot/file.dat", make([]byte, 16<<10), 0644)
		delta, err := m.Sync(ctx)
		if err != nil {
			t.Fatalf("sync %d: %v", round, err)
		}
		if delta >= full/2 {
			t.Fatalf("sync %d shipped %d blocks vs full %d: not incremental", round, delta, full)
		}
		assertReplica(t, m, fs, m.LastSnapshot())
	}
	syncs, _ := m.Stats()
	if syncs != 5 {
		t.Fatalf("syncs = %d, want 5", syncs)
	}
	// Only one mirror snapshot may remain on the source.
	count := 0
	for _, s := range fs.Snapshots() {
		if len(s.Name) >= 6 && s.Name[:6] == "mirror" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("%d mirror snapshots linger on source, want 1", count)
	}
}

func TestReplicaSurvivesSourceChurnBetweenSyncs(t *testing.T) {
	fs, srcDev, dstDev := newPair(t, 8192)
	workload.Generate(ctx, fs, workload.Spec{Seed: 23, Files: 30, DirFanout: 5, MeanFileSize: 4 << 10})
	m := New(fs, srcDev, dstDev, nil, physical.Costs{})
	if _, err := m.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	frozen := m.LastSnapshot()

	// Heavy churn after the sync: replica must still match the synced
	// snapshot exactly.
	for i := 0; i < 10; i++ {
		fs.WriteFile(ctx, "/churn", make([]byte, 50<<10), 0644)
		fs.CP(ctx)
	}
	assertReplica(t, m, fs, frozen)
}

func TestLinkChargesTransferTime(t *testing.T) {
	env := sim.NewEnv()
	src := storage.NewMemDevice(4096)
	fs, err := wafl.Mkfs(ctx, src, nil, wafl.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fs.WriteFile(ctx, "/payload", make([]byte, 1<<20), 0644)
	dst := storage.NewMemDevice(4096)
	link := NewLink(env, "wan", 1<<20 /* 1 MB/s */, time.Millisecond)
	m := New(fs, src, dst, link, physical.Costs{})
	var shipped int
	env.Spawn("sync", func(p *sim.Proc) {
		c := sim.WithProc(context.Background(), p)
		var err error
		shipped, err = m.Sync(c)
		if err != nil {
			t.Error(err)
		}
		link.station.Drain(p)
	})
	env.Run()
	if shipped == 0 {
		t.Fatal("nothing shipped")
	}
	// >1 MB over a 1 MB/s link: at least a second of virtual time.
	if env.Now() < time.Second {
		t.Fatalf("transfer took %v of virtual time, want >= 1s", env.Now())
	}
	if link.Sent() < 1<<20 {
		t.Fatalf("link sent %d bytes", link.Sent())
	}
}
