package workload

import (
	"context"
	"testing"

	"repro/internal/storage"
	"repro/internal/wafl"
)

var ctx = context.Background()

func newFS(t *testing.T, blocks int) *wafl.FS {
	t.Helper()
	fs, err := wafl.Mkfs(ctx, storage.NewMemDevice(blocks), nil, wafl.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestGenerateIsDeterministic(t *testing.T) {
	spec := Spec{Seed: 5, Files: 40, DirFanout: 6, MeanFileSize: 8 << 10, Symlinks: 3, Hardlinks: 2}
	a := newFS(t, 4096)
	b := newFS(t, 4096)
	pa, err := Generate(ctx, a, spec)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := Generate(ctx, b, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(pa) != len(pb) {
		t.Fatalf("path counts differ: %d vs %d", len(pa), len(pb))
	}
	da, _ := TreeDigest(ctx, a.ActiveView(), "/")
	db, _ := TreeDigest(ctx, b.ActiveView(), "/")
	if diffs := DiffDigests(da, db); len(diffs) > 0 {
		t.Fatalf("same seed produced different trees: %v", diffs[0])
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	a := newFS(t, 4096)
	b := newFS(t, 4096)
	Generate(ctx, a, Spec{Seed: 1, Files: 20, DirFanout: 4, MeanFileSize: 4 << 10})
	Generate(ctx, b, Spec{Seed: 2, Files: 20, DirFanout: 4, MeanFileSize: 4 << 10})
	da, _ := TreeDigest(ctx, a.ActiveView(), "/")
	db, _ := TreeDigest(ctx, b.ActiveView(), "/")
	if len(DiffDigests(da, db)) == 0 {
		t.Fatal("different seeds produced identical trees")
	}
}

func TestGenerateWithPrefix(t *testing.T) {
	fs := newFS(t, 4096)
	paths, err := Generate(ctx, fs, Spec{Seed: 3, Files: 15, DirFanout: 4, MeanFileSize: 4 << 10, Prefix: "/q0", Symlinks: 2, Hardlinks: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		if len(p) < 4 || p[:4] != "/q0/" {
			t.Fatalf("path %q escapes the prefix", p)
		}
	}
	// Links live under the prefix too.
	if _, err := fs.ActiveView().Namei(ctx, "/q0/link0"); err != nil {
		t.Fatalf("symlink not under prefix: %v", err)
	}
	if _, err := fs.ActiveView().Namei(ctx, "/q0/hard0"); err != nil {
		t.Fatalf("hardlink not under prefix: %v", err)
	}
}

func TestAgeFragmentsFreeSpace(t *testing.T) {
	fs := newFS(t, 8192)
	paths, err := Generate(ctx, fs, Spec{Seed: 4, Files: 100, DirFanout: 8, MeanFileSize: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	contiguity := func() float64 {
		// Fraction of used blocks whose successor block is also used:
		// a proxy for how contiguous allocations are.
		used, runs := 0, 0
		for b := wafl.BlockNo(8); int(b) < fs.NumBlocks()-1; b++ {
			if fs.BlockMapWord(b)&wafl.ActiveBit != 0 {
				used++
				if fs.BlockMapWord(b+1)&wafl.ActiveBit != 0 {
					runs++
				}
			}
		}
		if used == 0 {
			return 0
		}
		return float64(runs) / float64(used)
	}
	fs.CP(ctx)
	before := contiguity()
	alive, err := Age(ctx, fs, paths, AgeSpec{Seed: 5, Rounds: 8, ChurnPerRound: 60, MeanFileSize: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(alive) == 0 {
		t.Fatal("aging killed everything")
	}
	fs.CP(ctx)
	after := contiguity()
	if after >= before {
		t.Fatalf("aging did not fragment: contiguity %.3f -> %.3f", before, after)
	}
	if err := fs.MustCheck(ctx); err != nil {
		t.Fatal(err)
	}
	// Every surviving path is readable.
	for _, p := range alive[:10] {
		if _, err := fs.ActiveView().ReadFile(ctx, p); err != nil {
			t.Fatalf("survivor %s unreadable: %v", p, err)
		}
	}
}

func TestTreeDigestDetectsEveryKindOfChange(t *testing.T) {
	fs := newFS(t, 2048)
	fs.WriteFile(ctx, "/a/f.txt", []byte("v1"), 0644)
	base, err := TreeDigest(ctx, fs.ActiveView(), "/")
	if err != nil {
		t.Fatal(err)
	}

	mutate := []struct {
		name string
		fn   func()
	}{
		{"content", func() { fs.WriteFile(ctx, "/a/f.txt", []byte("v2"), 0644) }},
		{"mode", func() {
			ino, _ := fs.ActiveView().Namei(ctx, "/a/f.txt")
			m := uint32(0600)
			fs.SetAttr(ctx, ino, wafl.Attr{Mode: &m})
		}},
		{"uid", func() {
			ino, _ := fs.ActiveView().Namei(ctx, "/a/f.txt")
			u := uint32(77)
			fs.SetAttr(ctx, ino, wafl.Attr{UID: &u})
		}},
		{"new file", func() { fs.WriteFile(ctx, "/a/g.txt", []byte("x"), 0644) }},
		{"removal", func() { fs.RemovePath(ctx, "/a/g.txt") }},
	}
	prev := base
	for _, m := range mutate {
		m.fn()
		cur, err := TreeDigest(ctx, fs.ActiveView(), "/")
		if err != nil {
			t.Fatal(err)
		}
		if len(DiffDigests(prev, cur)) == 0 {
			t.Fatalf("%s change not detected by digest", m.name)
		}
		prev = cur
	}
}

func TestTreeDigestSubtree(t *testing.T) {
	fs := newFS(t, 2048)
	fs.WriteFile(ctx, "/in/x.txt", []byte("in"), 0644)
	fs.WriteFile(ctx, "/out/y.txt", []byte("out"), 0644)
	d, err := TreeDigest(ctx, fs.ActiveView(), "/in")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d["/x.txt"]; !ok {
		t.Fatalf("subtree digest missing /x.txt: %v", keys(d))
	}
	for p := range d {
		if len(p) >= 2 && p[:2] == "/o" {
			t.Fatalf("subtree digest leaked %s", p)
		}
	}
}

func keys(m map[string]Entry) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
