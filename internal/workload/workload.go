// Package workload builds and ages filesystem contents for tests and
// benchmarks. The paper's measurements run against "copies of real
// file systems from Network Appliance's engineering department" and
// note that "a mature data set is typically slower to backup than a
// newly created one because of fragmentation"; Generate builds an
// engineering-directory-shaped tree and Age applies create/overwrite/
// delete churn across consistency points until the free space — and
// therefore every later file — is scattered.
package workload

import (
	"context"
	"crypto/sha256"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/wafl"
)

// Spec describes a generated dataset.
type Spec struct {
	// Seed makes generation deterministic.
	Seed int64
	// Files is the number of regular files.
	Files int
	// DirFanout is roughly how many entries share a directory.
	DirFanout int
	// MeanFileSize is the average file size in bytes; sizes follow a
	// heavy-tailed mixture (most files small, a few large), like real
	// engineering trees.
	MeanFileSize int
	// Symlinks and Hardlinks add that many of each.
	Symlinks  int
	Hardlinks int
	// Prefix roots the tree under this directory ("" = "/"). Used to
	// split a volume into independently dumpable quota trees (§5.2).
	Prefix string
}

// DefaultSpec returns a small engineering-tree-shaped dataset.
func DefaultSpec() Spec {
	return Spec{Seed: 1, Files: 200, DirFanout: 12, MeanFileSize: 24 << 10, Symlinks: 8, Hardlinks: 6}
}

// fileSize draws from a heavy-tailed size mixture around mean.
func fileSize(r *rand.Rand, mean int) int {
	switch r.Intn(10) {
	case 0: // large: ~8x mean
		return r.Intn(mean*16) + mean
	case 1, 2: // medium
		return r.Intn(mean*2) + mean/2
	default: // small
		n := r.Intn(mean/2) + 1
		return n
	}
}

// dirFor picks/creates a directory path for file index i.
func dirFor(r *rand.Rand, spec Spec, i int) string {
	depth := 1 + r.Intn(3)
	parts := make([]string, depth)
	for d := range parts {
		parts[d] = fmt.Sprintf("d%d", (i/spec.DirFanout+d*7)%(spec.Files/spec.DirFanout+1))
	}
	out := ""
	for _, p := range parts {
		out += "/" + p
	}
	return out
}

// Generate populates fs with spec's tree. It returns the list of file
// paths created, sorted.
func Generate(ctx context.Context, fs *wafl.FS, spec Spec) ([]string, error) {
	r := rand.New(rand.NewSource(spec.Seed))
	var paths []string
	for i := 0; i < spec.Files; i++ {
		p := fmt.Sprintf("%s%s/file%04d.dat", spec.Prefix, dirFor(r, spec, i), i)
		data := make([]byte, fileSize(r, spec.MeanFileSize))
		r.Read(data)
		if _, err := fs.WriteFile(ctx, p, data, 0644); err != nil {
			return nil, fmt.Errorf("workload: writing %s: %w", p, err)
		}
		paths = append(paths, p)
	}
	base := spec.Prefix
	if base == "" {
		base = "/"
	}
	for i := 0; i < spec.Symlinks && i < len(paths); i++ {
		dir, err := fs.ActiveView().Namei(ctx, base)
		if err != nil {
			return nil, err
		}
		if _, err := fs.Symlink(ctx, dir, fmt.Sprintf("link%d", i), paths[i*7%len(paths)]); err != nil {
			return nil, err
		}
	}
	for i := 0; i < spec.Hardlinks && i < len(paths); i++ {
		target := paths[(i*13+1)%len(paths)]
		ino, err := fs.ActiveView().Namei(ctx, target)
		if err != nil {
			return nil, err
		}
		root, err := fs.ActiveView().Namei(ctx, base)
		if err != nil {
			return nil, err
		}
		if err := fs.Link(ctx, ino, root, fmt.Sprintf("hard%d", i)); err != nil {
			return nil, err
		}
	}
	if err := fs.CP(ctx); err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

// AgeSpec controls the churn that matures a filesystem.
type AgeSpec struct {
	Seed int64
	// Prefix roots newly created churn files (must match the Spec's
	// Prefix when aging a quota tree).
	Prefix string
	// Rounds of churn; each round rewrites/deletes/creates a fraction
	// of files and takes a consistency point.
	Rounds int
	// ChurnPerRound is how many files each round touches.
	ChurnPerRound int
	// MeanFileSize for replacement files.
	MeanFileSize int
}

// DefaultAge returns churn that measurably fragments a small volume.
func DefaultAge() AgeSpec {
	return AgeSpec{Seed: 2, Rounds: 8, ChurnPerRound: 60, MeanFileSize: 24 << 10}
}

// Age applies churn to the existing paths, returning the surviving
// path list. Deletions and recreations interleave with consistency
// points so freed space scatters through the volume.
func Age(ctx context.Context, fs *wafl.FS, paths []string, spec AgeSpec) ([]string, error) {
	r := rand.New(rand.NewSource(spec.Seed))
	alive := append([]string(nil), paths...)
	serial := 0
	for round := 0; round < spec.Rounds; round++ {
		for c := 0; c < spec.ChurnPerRound && len(alive) > 1; c++ {
			i := r.Intn(len(alive))
			switch r.Intn(3) {
			case 0: // delete
				if err := fs.RemovePath(ctx, alive[i]); err != nil {
					return nil, fmt.Errorf("workload: aging remove %s: %w", alive[i], err)
				}
				alive[i] = alive[len(alive)-1]
				alive = alive[:len(alive)-1]
			case 1: // overwrite with a different size
				data := make([]byte, fileSize(r, spec.MeanFileSize))
				r.Read(data)
				if _, err := fs.WriteFile(ctx, alive[i], data, 0644); err != nil {
					return nil, err
				}
			case 2: // create a new file
				serial++
				// The seed namespaces churn files so repeated Age calls
				// (with different seeds) never collide and double-list
				// a path in the survivor set.
				p := fmt.Sprintf("%s/aged/r%d/new%d-%05d.dat", spec.Prefix, round%4, spec.Seed, serial)
				data := make([]byte, fileSize(r, spec.MeanFileSize))
				r.Read(data)
				if _, err := fs.WriteFile(ctx, p, data, 0644); err != nil {
					return nil, err
				}
				alive = append(alive, p)
			}
		}
		if err := fs.CP(ctx); err != nil {
			return nil, err
		}
	}
	sort.Strings(alive)
	return alive, nil
}

// Entry is one node of a tree digest.
type Entry struct {
	Type   uint32 // wafl.ModeDir / ModeReg / ModeSymlink
	Mode   uint32 // permission bits
	UID    uint32
	GID    uint32
	Size   uint64
	Digest [32]byte // sha256 of contents (files), of target (symlinks)
}

// TreeDigest walks the view from path and returns a map of relative
// path → Entry, suitable for equality comparison between a source and
// a restored filesystem.
func TreeDigest(ctx context.Context, v *wafl.View, root string) (map[string]Entry, error) {
	out := make(map[string]Entry)
	rootIno, err := v.Namei(ctx, root)
	if err != nil {
		return nil, err
	}
	var walk func(ino wafl.Inum, rel string) error
	walk = func(ino wafl.Inum, rel string) error {
		inode, err := v.GetInode(ctx, ino)
		if err != nil {
			return err
		}
		e := Entry{
			Type: inode.Mode & 0170000,
			Mode: inode.Mode & 07777,
			UID:  inode.UID, GID: inode.GID,
		}
		switch {
		case wafl.IsDir(inode.Mode):
			ents, err := v.Readdir(ctx, ino)
			if err != nil {
				return err
			}
			for _, c := range ents {
				if c.Name == "." || c.Name == ".." {
					continue
				}
				if err := walk(c.Ino, rel+"/"+c.Name); err != nil {
					return err
				}
			}
		case wafl.IsSymlink(inode.Mode):
			target, err := v.Readlink(ctx, ino)
			if err != nil {
				return err
			}
			e.Size = uint64(len(target))
			e.Digest = sha256.Sum256([]byte(target))
		default:
			e.Size = inode.Size
			buf := make([]byte, inode.Size)
			if _, err := v.ReadAt(ctx, ino, 0, buf); err != nil {
				return err
			}
			e.Digest = sha256.Sum256(buf)
		}
		out[rel] = e
		return nil
	}
	if err := walk(rootIno, ""); err != nil {
		return nil, err
	}
	return out, nil
}

// DiffDigests returns human-readable differences between two digests
// (empty = identical).
func DiffDigests(a, b map[string]Entry) []string {
	var diffs []string
	for p, ea := range a {
		eb, ok := b[p]
		if !ok {
			diffs = append(diffs, fmt.Sprintf("missing in b: %s", p))
			continue
		}
		if ea != eb {
			diffs = append(diffs, fmt.Sprintf("differs: %s (%+v vs %+v)", p, ea, eb))
		}
	}
	for p := range b {
		if _, ok := a[p]; !ok {
			diffs = append(diffs, fmt.Sprintf("extra in b: %s", p))
		}
	}
	sort.Strings(diffs)
	return diffs
}
