package logical

import (
	"fmt"
	"sort"
	"strings"
)

// MaxLevel is the deepest incremental level, matching the 0–9 scheme
// of BSD dump that the paper describes.
const MaxLevel = 9

// DumpDates records when each (filesystem, level) was last dumped —
// the /etc/dumpdates of BSD dump. An incremental dump at level L backs
// up everything changed since the most recent dump at any level < L
// (its "base").
type DumpDates struct {
	dates map[string]map[int]int64
}

// NewDumpDates returns an empty history.
func NewDumpDates() *DumpDates {
	return &DumpDates{dates: make(map[string]map[int]int64)}
}

// Base returns the base date for a level-L dump of fsid: the latest
// recorded date among levels 0..L-1, or 0 (dump everything) if none.
func (d *DumpDates) Base(fsid string, level int) int64 {
	var base int64
	for l, date := range d.dates[fsid] {
		if l < level && date > base {
			base = date
		}
	}
	return base
}

// Record stores that a level-L dump of fsid completed at date. Deeper
// levels' stale records are cleared, as a new base invalidates them.
func (d *DumpDates) Record(fsid string, level int, date int64) {
	m := d.dates[fsid]
	if m == nil {
		m = make(map[int]int64)
		d.dates[fsid] = m
	}
	m[level] = date
	for l := range m {
		if l > level {
			delete(m, l)
		}
	}
}

// DumpDateEntry is one (filesystem, level, date) line of the history.
type DumpDateEntry struct {
	FSID  string
	Level int
	Date  int64
}

// Entries returns the history as a sorted slice — the iteration the
// catalog journal needs to persist and compare histories.
func (d *DumpDates) Entries() []DumpDateEntry {
	var out []DumpDateEntry
	for fsid, m := range d.dates {
		for l, date := range m {
			out = append(out, DumpDateEntry{FSID: fsid, Level: l, Date: date})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].FSID != out[j].FSID {
			return out[i].FSID < out[j].FSID
		}
		return out[i].Level < out[j].Level
	})
	return out
}

// String renders the history in dumpdates style for diagnostics.
func (d *DumpDates) String() string {
	var lines []string
	for fsid, m := range d.dates {
		for l, date := range m {
			lines = append(lines, fmt.Sprintf("%s level %d at %d", fsid, l, date))
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
