package logical

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/dumpfmt"
	"repro/internal/wafl"
)

// Files larger than MaxSegsPerHeader segments (512 KB) spill into
// TS_ADDR continuation headers — the same mechanism BSD dump uses.
// These tests exercise that path, including holes that span the
// continuation boundary.

func TestLargeFileSpansContinuationHeaders(t *testing.T) {
	src := newFS(t, 8192)
	data := make([]byte, 1536<<10) // 1.5 MB = 3 headers' worth
	rand.New(rand.NewSource(51)).Read(data)
	src.WriteFile(ctx, "/big.bin", data, 0644)
	src.CreateSnapshot(ctx, "s")
	sv, _ := src.SnapshotView("s")
	drive := newTape(t, 0, 1)
	dumpToTape(t, sv, drive, 0, nil)

	// The stream must contain TS_ADDR records for this file.
	drive.Rewind(nil)
	r := dumpfmt.NewReader(NewDriveSource(drive, nil, 0))
	addrs := 0
	for {
		h, err := r.NextHeader()
		if err != nil {
			break
		}
		if h.Type == dumpfmt.TSEnd {
			break
		}
		if h.Type == dumpfmt.TSAddr {
			addrs++
		}
		if h.Type == dumpfmt.TSInode || h.Type == dumpfmt.TSAddr ||
			h.Type == dumpfmt.TSBits || h.Type == dumpfmt.TSClri {
			n := 0
			for _, a := range h.Addrs {
				if a == 1 {
					n++
				}
			}
			r.ReadSegments(n)
		}
	}
	if addrs < 2 {
		t.Fatalf("1.5 MB file produced %d TS_ADDR records, want >= 2", addrs)
	}

	dst := newFS(t, 8192)
	restoreFromTape(t, dst, drive)
	got, err := dst.ActiveView().ReadFile(ctx, "/big.bin")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("large file corrupted through continuations: %v", err)
	}
}

func TestLargeSparseFileAcrossContinuations(t *testing.T) {
	src := newFS(t, 8192)
	ino, err := src.Create(ctx, wafl.RootIno, "swiss.bin", 0644, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Data islands at 0, straddling the 512-segment header boundary
	// from just below, just above it, and far out; holes everywhere
	// else. Offsets are block-disjoint so the islands don't overlap.
	islands := []uint64{0, 508 * 1024, 516 * 1024, 1800 * 1024}
	payload := map[uint64][]byte{}
	for i, off := range islands {
		data := bytes.Repeat([]byte{byte(i + 1)}, 4096)
		if err := src.Write(ctx, ino, off, data); err != nil {
			t.Fatal(err)
		}
		payload[off] = data
	}
	src.CreateSnapshot(ctx, "s")
	sv, _ := src.SnapshotView("s")
	drive := newTape(t, 0, 1)
	stats := dumpToTape(t, sv, drive, 0, nil)
	// Most of the ~1.8 MB is holes: the dump must stay small.
	if stats.BytesWritten > 200<<10 {
		t.Fatalf("sparse dump wrote %d bytes; holes not elided across continuations", stats.BytesWritten)
	}

	dst := newFS(t, 8192)
	restoreFromTape(t, dst, drive)
	dIno, err := dst.ActiveView().Namei(ctx, "/swiss.bin")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	for off, want := range payload {
		if _, err := dst.ActiveView().ReadAt(ctx, dIno, off, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, want) {
			t.Fatalf("island at %d corrupted", off)
		}
	}
	// A hole region must read as zeros and stay physically sparse.
	if _, err := dst.ActiveView().ReadAt(ctx, dIno, 1000*1024, buf); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("hole read non-zero after restore")
		}
	}
	dst.CP(ctx)
	pbn, err := dst.ActiveView().BlockAt(ctx, dIno, 250) // ~1 MB in
	if err != nil {
		t.Fatal(err)
	}
	if pbn != 0 {
		t.Fatal("restored file lost a hole spanning the continuation boundary")
	}
}

func TestThreeLevelIncrementalChain(t *testing.T) {
	src := newFS(t, 16384)
	dates := NewDumpDates()
	tape0, tape1, tape2 := newTape(t, 0, 1), newTape(t, 0, 1), newTape(t, 0, 1)

	// Level 0.
	src.WriteFile(ctx, "/base/a.txt", []byte("a0"), 0644)
	src.WriteFile(ctx, "/base/b.txt", []byte("b0"), 0644)
	src.CreateSnapshot(ctx, "l0")
	sv, _ := src.SnapshotView("l0")
	dumpToTape(t, sv, tape0, 0, dates)

	// Level 1: modify a, add c.
	src.WriteFile(ctx, "/base/a.txt", []byte("a1 modified"), 0644)
	src.WriteFile(ctx, "/base/c.txt", []byte("c1 new"), 0644)
	src.CreateSnapshot(ctx, "l1")
	sv, _ = src.SnapshotView("l1")
	dumpToTape(t, sv, tape1, 1, dates)

	// Level 2: delete b, modify c.
	src.RemovePath(ctx, "/base/b.txt")
	src.WriteFile(ctx, "/base/c.txt", []byte("c2 again"), 0644)
	src.CreateSnapshot(ctx, "l2")
	sv, _ = src.SnapshotView("l2")
	s2 := dumpToTape(t, sv, tape2, 2, dates)
	if s2.BaseDate == 0 {
		t.Fatal("level 2 has no base")
	}

	// Replay the chain.
	dst := newFS(t, 16384)
	restoreFromTape(t, dst, tape0)
	restoreFromTape(t, dst, tape1, func(o *RestoreOptions) { o.SyncDeletes = true })
	restoreFromTape(t, dst, tape2, func(o *RestoreOptions) { o.SyncDeletes = true })

	assertTreesEqual(t, digests(t, sv, "/"), digests(t, dst.ActiveView(), "/"))
	if err := dst.MustCheck(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalAfterRestoreRoundTripsTwice(t *testing.T) {
	// Applying the same incremental twice must be idempotent (restore
	// is restartable after a crash, per the paper's footnote 2).
	src := newFS(t, 8192)
	dates := NewDumpDates()
	src.WriteFile(ctx, "/f", []byte("v0"), 0644)
	src.CreateSnapshot(ctx, "l0")
	sv, _ := src.SnapshotView("l0")
	tape0 := newTape(t, 0, 1)
	dumpToTape(t, sv, tape0, 0, dates)
	src.WriteFile(ctx, "/f", []byte("v1"), 0644)
	src.CreateSnapshot(ctx, "l1")
	sv1, _ := src.SnapshotView("l1")
	tape1 := newTape(t, 0, 1)
	dumpToTape(t, sv1, tape1, 1, dates)

	dst := newFS(t, 8192)
	restoreFromTape(t, dst, tape0)
	restoreFromTape(t, dst, tape1, func(o *RestoreOptions) { o.SyncDeletes = true })
	restoreFromTape(t, dst, tape1, func(o *RestoreOptions) { o.SyncDeletes = true })
	assertTreesEqual(t, digests(t, sv1, "/"), digests(t, dst.ActiveView(), "/"))
}
