// Package logical implements the paper's logical (file-based) backup
// strategy: a kernel-integrated, BSD-style dump and restore (§3).
//
// Dump runs as the classic four-phase operation — map files, map
// directories, dump directories, dump files, all in inode order — and
// writes the archival stream format of internal/dumpfmt. Restore reads
// the directories into a "desiccated file system" it can run its own
// namei against, then lays files onto the filesystem, supporting full,
// subset (single-file "stupidity recovery") and incremental-chain
// restores.
//
// Everything here moves through the filesystem: reads and writes use
// wafl views and operations, paying the metadata-interpretation CPU
// and random-read disk costs the paper measures — in deliberate
// contrast to internal/physical, which bypasses the filesystem.
package logical

import (
	"context"
	"errors"
	"io"

	"repro/internal/dumpfmt"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/tape"
)

// DriveSink adapts a tape drive to dumpfmt.Sink, mapping end-of-media
// and cartridge changes. The sim process (may be nil) is charged for
// tape time.
//
// Media faults are absorbed here, below the stream format: transient
// write errors are retried with backoff charged to the simulated
// clock; a persistent media error means the cartridge is bad, which to
// the stream Writer looks exactly like running off the end of the
// volume — it is reported as ErrEndOfMedia so the Writer's normal
// volume-change path moves the dump to the next cartridge. Drive
// offline is not recoverable at this layer and propagates up, where
// the dump engines turn it into a checkpointed failure.
type DriveSink struct {
	Drive *tape.Drive
	Proc  *sim.Proc
	// Retry bounds transient-media-error retries. Zero value means
	// storage.DefaultRetryPolicy.
	Retry storage.RetryPolicy
	// Ctx, when set, is polled between backoff sleeps so a canceled
	// dump stops retrying instead of sleeping out the budget.
	Ctx context.Context

	retries int // transient media errors retried
	swaps   int // cartridges abandoned to persistent errors
}

// MediaStats reports transient retries and fault-driven cartridge
// swaps performed by the sink.
func (s *DriveSink) MediaStats() (retries, swaps int) { return s.retries, s.swaps }

// BindProc rebinds the simulated process tape time is charged to and
// returns the previous binding. A pipeline writer stage runs on its own
// process, so it binds the sink to itself for the stage's lifetime and
// restores the old binding on exit.
func (s *DriveSink) BindProc(p *sim.Proc) *sim.Proc {
	old := s.Proc
	s.Proc = p
	return old
}

// WriteRecord implements dumpfmt.Sink.
func (s *DriveSink) WriteRecord(data []byte) error {
	retry := s.Retry
	if retry.MaxRetries == 0 && retry.Initial == 0 {
		retry = storage.DefaultRetryPolicy()
	}
	err := s.Drive.WriteRecord(s.Proc, data)
	for attempt := 1; tape.IsTransientMedia(err) && attempt <= retry.MaxRetries; attempt++ {
		if s.Ctx != nil && s.Ctx.Err() != nil {
			return s.Ctx.Err()
		}
		s.retries++
		if s.Proc != nil {
			s.Proc.Sleep(retry.Delay(attempt))
		}
		err = s.Drive.WriteRecord(s.Proc, data)
	}
	switch {
	case err == nil:
		return nil
	case errors.Is(err, tape.ErrEndOfMedia):
		return dumpfmt.ErrEndOfMedia
	case errors.Is(err, tape.ErrMediaWrite):
		// Persistent (or unhealed transient) media error: give up on
		// this cartridge. What was already written stays readable; the
		// Writer re-emits the failed record on the next volume.
		s.swaps++
		return dumpfmt.ErrEndOfMedia
	default:
		return err
	}
}

// NextVolume implements dumpfmt.Sink: load the next stacker cartridge.
func (s *DriveSink) NextVolume() error {
	return s.Drive.Load(s.Proc)
}

// DriveSource adapts a tape drive to dumpfmt.Source for restore,
// cycling through stacker cartridges at end of tape and treating file
// marks and an empty stacker as end of stream.
//
// Media read faults get the same bounded retry-with-backoff the write
// path has had since the dump engines grew fault tolerance: transient
// errors (a marginal read the drive recovers on a repositioning pass)
// are retried up to Retry.MaxRetries with backoff charged to the
// simulated clock; a persistent error — a damaged spot of tape —
// either propagates (default, verify wants to know) or, with
// SkipDamaged, spaces past the bad record and keeps reading, leaning
// on the stream formats' resynchronization to salvage the rest.
type DriveSource struct {
	Drive *tape.Drive
	Proc  *sim.Proc
	// Retry bounds transient-read retries. Zero value means
	// storage.DefaultRetryPolicy.
	Retry storage.RetryPolicy
	// Ctx, when set, is polled between backoff sleeps so a canceled
	// restore stops retrying promptly.
	Ctx context.Context
	// SkipDamaged spaces past records with persistent read faults
	// instead of failing the restore.
	SkipDamaged bool

	volumes int // cartridges consumed so far
	max     int // stop after this many (0 = until the stacker empties)
	retries int // transient read errors retried
	skipped int // damaged records spaced past
}

// NewDriveSource reads from drive across at most maxVolumes cartridges
// (0 = keep loading until the stacker is empty).
func NewDriveSource(drive *tape.Drive, proc *sim.Proc, maxVolumes int) *DriveSource {
	return &DriveSource{Drive: drive, Proc: proc, max: maxVolumes}
}

// ReadStats reports transient read retries and damaged records
// skipped by the source.
func (s *DriveSource) ReadStats() (retries, skipped int) { return s.retries, s.skipped }

// BindProc rebinds the simulated process tape time is charged to and
// returns the previous binding (see DriveSink.BindProc).
func (s *DriveSource) BindProc(p *sim.Proc) *sim.Proc {
	old := s.Proc
	s.Proc = p
	return old
}

// ReadRecord implements dumpfmt.Source.
func (s *DriveSource) ReadRecord() ([]byte, error) {
	retry := s.Retry
	if retry.MaxRetries == 0 && retry.Initial == 0 {
		retry = storage.DefaultRetryPolicy()
	}
	attempt := 0
	for {
		if s.Ctx != nil && s.Ctx.Err() != nil {
			return nil, s.Ctx.Err()
		}
		rec, err := s.Drive.ReadRecord(s.Proc)
		switch {
		case err == nil:
			return rec, nil
		case errors.Is(err, tape.ErrFileMark):
			continue
		case errors.Is(err, tape.ErrEndOfTape):
			s.volumes++
			if s.max > 0 && s.volumes >= s.max {
				return nil, io.EOF
			}
			if lerr := s.Drive.Load(s.Proc); lerr != nil {
				return nil, io.EOF
			}
		case tape.IsTransientMedia(err):
			attempt++
			if attempt > retry.MaxRetries {
				return nil, err
			}
			s.retries++
			if s.Proc != nil {
				s.Proc.Sleep(retry.Delay(attempt))
			}
		case errors.Is(err, tape.ErrMediaRead) && s.SkipDamaged:
			// A latched bad spot: the head is parked before it, so
			// space one record past and keep going. The dumpfmt
			// Reader (and physical restore's salvage mode) resync on
			// the far side.
			if serr := s.Drive.SpaceRecords(s.Proc, 1); serr != nil {
				return nil, serr
			}
			s.skipped++
			if s.Ctx != nil {
				obs.MetricsFrom(s.Ctx).Counter("restore_skipped_records_total",
					obs.Labels{"engine": "logical"}).Inc()
			}
			attempt = 0
		default:
			return nil, err
		}
	}
}
