// Package logical implements the paper's logical (file-based) backup
// strategy: a kernel-integrated, BSD-style dump and restore (§3).
//
// Dump runs as the classic four-phase operation — map files, map
// directories, dump directories, dump files, all in inode order — and
// writes the archival stream format of internal/dumpfmt. Restore reads
// the directories into a "desiccated file system" it can run its own
// namei against, then lays files onto the filesystem, supporting full,
// subset (single-file "stupidity recovery") and incremental-chain
// restores.
//
// Everything here moves through the filesystem: reads and writes use
// wafl views and operations, paying the metadata-interpretation CPU
// and random-read disk costs the paper measures — in deliberate
// contrast to internal/physical, which bypasses the filesystem.
package logical

import (
	"errors"
	"io"

	"repro/internal/dumpfmt"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/tape"
)

// DriveSink adapts a tape drive to dumpfmt.Sink, mapping end-of-media
// and cartridge changes. The sim process (may be nil) is charged for
// tape time.
//
// Media faults are absorbed here, below the stream format: transient
// write errors are retried with backoff charged to the simulated
// clock; a persistent media error means the cartridge is bad, which to
// the stream Writer looks exactly like running off the end of the
// volume — it is reported as ErrEndOfMedia so the Writer's normal
// volume-change path moves the dump to the next cartridge. Drive
// offline is not recoverable at this layer and propagates up, where
// the dump engines turn it into a checkpointed failure.
type DriveSink struct {
	Drive *tape.Drive
	Proc  *sim.Proc
	// Retry bounds transient-media-error retries. Zero value means
	// storage.DefaultRetryPolicy.
	Retry storage.RetryPolicy

	retries int // transient media errors retried
	swaps   int // cartridges abandoned to persistent errors
}

// MediaStats reports transient retries and fault-driven cartridge
// swaps performed by the sink.
func (s *DriveSink) MediaStats() (retries, swaps int) { return s.retries, s.swaps }

// WriteRecord implements dumpfmt.Sink.
func (s *DriveSink) WriteRecord(data []byte) error {
	retry := s.Retry
	if retry.MaxRetries == 0 && retry.Initial == 0 {
		retry = storage.DefaultRetryPolicy()
	}
	err := s.Drive.WriteRecord(s.Proc, data)
	for attempt := 1; tape.IsTransientMedia(err) && attempt <= retry.MaxRetries; attempt++ {
		s.retries++
		if s.Proc != nil {
			s.Proc.Sleep(retry.Delay(attempt))
		}
		err = s.Drive.WriteRecord(s.Proc, data)
	}
	switch {
	case err == nil:
		return nil
	case errors.Is(err, tape.ErrEndOfMedia):
		return dumpfmt.ErrEndOfMedia
	case errors.Is(err, tape.ErrMediaWrite):
		// Persistent (or unhealed transient) media error: give up on
		// this cartridge. What was already written stays readable; the
		// Writer re-emits the failed record on the next volume.
		s.swaps++
		return dumpfmt.ErrEndOfMedia
	default:
		return err
	}
}

// NextVolume implements dumpfmt.Sink: load the next stacker cartridge.
func (s *DriveSink) NextVolume() error {
	return s.Drive.Load(s.Proc)
}

// DriveSource adapts a tape drive to dumpfmt.Source for restore,
// cycling through stacker cartridges at end of tape and treating file
// marks and an empty stacker as end of stream.
type DriveSource struct {
	Drive *tape.Drive
	Proc  *sim.Proc

	volumes int // cartridges consumed so far
	max     int // stop after this many (0 = until the stacker empties)
}

// NewDriveSource reads from drive across at most maxVolumes cartridges
// (0 = keep loading until the stacker is empty).
func NewDriveSource(drive *tape.Drive, proc *sim.Proc, maxVolumes int) *DriveSource {
	return &DriveSource{Drive: drive, Proc: proc, max: maxVolumes}
}

// ReadRecord implements dumpfmt.Source.
func (s *DriveSource) ReadRecord() ([]byte, error) {
	for {
		rec, err := s.Drive.ReadRecord(s.Proc)
		switch {
		case err == nil:
			return rec, nil
		case errors.Is(err, tape.ErrFileMark):
			continue
		case errors.Is(err, tape.ErrEndOfTape):
			s.volumes++
			if s.max > 0 && s.volumes >= s.max {
				return nil, io.EOF
			}
			if lerr := s.Drive.Load(s.Proc); lerr != nil {
				return nil, io.EOF
			}
		default:
			return nil, err
		}
	}
}
