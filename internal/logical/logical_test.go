package logical

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/storage"
	"repro/internal/tape"
	"repro/internal/wafl"
	"repro/internal/workload"
)

var ctx = context.Background()

func newFS(t *testing.T, blocks int) *wafl.FS {
	t.Helper()
	fs, err := wafl.Mkfs(ctx, storage.NewMemDevice(blocks), nil, wafl.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

// newTape returns a drive loaded with enough cartridges.
func newTape(t *testing.T, capacity int64, carts int) *tape.Drive {
	t.Helper()
	p := tape.DefaultParams()
	p.Capacity = capacity
	d := tape.NewDrive(nil, "t0", p)
	for i := 0; i < carts; i++ {
		d.AddCartridges(tape.NewCartridge(string(rune('a' + i))))
	}
	if err := d.Load(nil); err != nil {
		t.Fatal(err)
	}
	return d
}

// dumpToTape runs a level-N dump of view to drive.
func dumpToTape(t *testing.T, view *wafl.View, drive *tape.Drive, level int, dates *DumpDates, opts ...func(*DumpOptions)) *DumpStats {
	t.Helper()
	o := DumpOptions{
		View: view, Level: level, Dates: dates, FSID: "test",
		Sink: &DriveSink{Drive: drive}, Label: "test", ReadAhead: 8,
	}
	for _, f := range opts {
		f(&o)
	}
	stats, err := Dump(ctx, o)
	if err != nil {
		t.Fatalf("dump: %v", err)
	}
	drive.Flush(nil)
	return stats
}

func restoreFromTape(t *testing.T, fs *wafl.FS, drive *tape.Drive, opts ...func(*RestoreOptions)) *RestoreStats {
	t.Helper()
	drive.Rewind(nil)
	o := RestoreOptions{
		FS: fs, Source: NewDriveSource(drive, nil, 0),
		KernelIntegrated: true,
	}
	for _, f := range opts {
		f(&o)
	}
	stats, err := Restore(ctx, o)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	return stats
}

func digests(t *testing.T, v *wafl.View, root string) map[string]workload.Entry {
	t.Helper()
	d, err := workload.TreeDigest(ctx, v, root)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func assertTreesEqual(t *testing.T, a, b map[string]workload.Entry) {
	t.Helper()
	if diffs := workload.DiffDigests(a, b); len(diffs) > 0 {
		for i, d := range diffs {
			if i >= 10 {
				t.Errorf("... and %d more", len(diffs)-10)
				break
			}
			t.Error(d)
		}
		t.FailNow()
	}
}

func TestFullDumpRestoreRoundTrip(t *testing.T) {
	src := newFS(t, 16384)
	spec := workload.DefaultSpec()
	if _, err := workload.Generate(ctx, src, spec); err != nil {
		t.Fatal(err)
	}
	if err := src.CreateSnapshot(ctx, "dump"); err != nil {
		t.Fatal(err)
	}
	sv, _ := src.SnapshotView("dump")

	drive := newTape(t, 0, 1)
	stats := dumpToTape(t, sv, drive, 0, nil)
	if stats.FilesDumped == 0 || stats.DirsDumped == 0 || stats.BytesWritten == 0 {
		t.Fatalf("empty dump stats: %+v", stats)
	}

	dst := newFS(t, 16384)
	rstats := restoreFromTape(t, dst, drive)
	if rstats.FilesRestored != stats.FilesDumped {
		t.Fatalf("restored %d files, dumped %d", rstats.FilesRestored, stats.FilesDumped)
	}
	assertTreesEqual(t, digests(t, sv, "/"), digests(t, dst.ActiveView(), "/"))
	if err := dst.MustCheck(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestCrossRestoreDifferentGeometry(t *testing.T) {
	// Logical backup's portability: restore onto a volume of totally
	// different size (paper: the stream presupposes no knowledge of
	// the source filesystem).
	src := newFS(t, 8192)
	workload.Generate(ctx, src, workload.Spec{Seed: 3, Files: 60, DirFanout: 6, MeanFileSize: 8 << 10})
	src.CreateSnapshot(ctx, "s")
	sv, _ := src.SnapshotView("s")
	drive := newTape(t, 0, 1)
	dumpToTape(t, sv, drive, 0, nil)

	dst := newFS(t, 3000) // much smaller, single group
	restoreFromTape(t, dst, drive)
	assertTreesEqual(t, digests(t, sv, "/"), digests(t, dst.ActiveView(), "/"))
}

func TestSingleFileStupidityRecovery(t *testing.T) {
	src := newFS(t, 8192)
	paths, err := workload.Generate(ctx, src, workload.Spec{Seed: 4, Files: 50, DirFanout: 5, MeanFileSize: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	victim := paths[0]
	precious, err := src.ActiveView().ReadFile(ctx, victim)
	if err != nil {
		t.Fatal(err)
	}
	src.CreateSnapshot(ctx, "s")
	sv, _ := src.SnapshotView("s")
	drive := newTape(t, 0, 1)
	stats := dumpToTape(t, sv, drive, 0, nil)

	// "Accidentally" delete the file, then restore just it.
	if err := src.RemovePath(ctx, victim); err != nil {
		t.Fatal(err)
	}
	rstats := restoreFromTape(t, src, drive, func(o *RestoreOptions) {
		o.Files = []string{victim}
	})
	if rstats.FilesRestored != 1 {
		t.Fatalf("restored %d files, want 1", rstats.FilesRestored)
	}
	if rstats.FilesSkipped != stats.FilesDumped-1 {
		t.Fatalf("skipped %d, want %d", rstats.FilesSkipped, stats.FilesDumped-1)
	}
	got, err := src.ActiveView().ReadFile(ctx, victim)
	if err != nil || !bytes.Equal(got, precious) {
		t.Fatalf("recovered file wrong: %v", err)
	}
	if err := src.MustCheck(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestSubtreeDump(t *testing.T) {
	src := newFS(t, 8192)
	src.WriteFile(ctx, "/proj/a.txt", []byte("aaa"), 0644)
	src.WriteFile(ctx, "/proj/sub/b.txt", []byte("bbb"), 0644)
	src.WriteFile(ctx, "/other/c.txt", []byte("ccc"), 0644)
	src.CreateSnapshot(ctx, "s")
	sv, _ := src.SnapshotView("s")
	drive := newTape(t, 0, 1)
	dumpToTape(t, sv, drive, 0, nil, func(o *DumpOptions) { o.Subtree = "/proj" })

	dst := newFS(t, 2048)
	restoreFromTape(t, dst, drive, func(o *RestoreOptions) { o.TargetDir = "/restored" })
	got, err := dst.ActiveView().ReadFile(ctx, "/restored/sub/b.txt")
	if err != nil || string(got) != "bbb" {
		t.Fatalf("subtree file: %q, %v", got, err)
	}
	if _, err := dst.ActiveView().ReadFile(ctx, "/restored/c.txt"); err == nil {
		t.Fatal("file outside subtree leaked into dump")
	}
}

func TestExcludeFilter(t *testing.T) {
	src := newFS(t, 4096)
	src.WriteFile(ctx, "/keep.txt", []byte("k"), 0644)
	src.WriteFile(ctx, "/skip.tmp", []byte("s"), 0644)
	src.WriteFile(ctx, "/dir/also.tmp", []byte("s2"), 0644)
	src.WriteFile(ctx, "/dir/fine.txt", []byte("f"), 0644)
	src.CreateSnapshot(ctx, "s")
	sv, _ := src.SnapshotView("s")
	drive := newTape(t, 0, 1)
	dumpToTape(t, sv, drive, 0, nil, func(o *DumpOptions) {
		o.Exclude = func(name string) bool { return strings.HasSuffix(name, ".tmp") }
	})

	dst := newFS(t, 2048)
	restoreFromTape(t, dst, drive)
	if _, err := dst.ActiveView().ReadFile(ctx, "/keep.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.ActiveView().ReadFile(ctx, "/dir/fine.txt"); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"/skip.tmp", "/dir/also.tmp"} {
		if _, err := dst.ActiveView().ReadFile(ctx, p); err == nil {
			t.Fatalf("%s should have been filtered", p)
		}
	}
}

func TestIncrementalChainWithDeletesAndRenames(t *testing.T) {
	src := newFS(t, 16384)
	dates := NewDumpDates()

	// Level 0 state.
	src.WriteFile(ctx, "/stable.txt", []byte("stable"), 0644)
	src.WriteFile(ctx, "/doomed.txt", []byte("doomed"), 0644)
	src.WriteFile(ctx, "/dir/old-name.txt", []byte("renamed content"), 0644)
	src.WriteFile(ctx, "/dir/grows.txt", []byte("v1"), 0644)
	src.CreateSnapshot(ctx, "level0")
	sv0, _ := src.SnapshotView("level0")
	tape0 := newTape(t, 0, 1)
	dumpToTape(t, sv0, tape0, 0, dates)

	// Mutations before level 1: delete, rename, modify, create.
	src.RemovePath(ctx, "/doomed.txt")
	dirIno, _ := src.ActiveView().Namei(ctx, "/dir")
	if err := src.Rename(ctx, dirIno, "old-name.txt", dirIno, "new-name.txt"); err != nil {
		t.Fatal(err)
	}
	src.WriteFile(ctx, "/dir/grows.txt", []byte("v2 is longer"), 0644)
	src.WriteFile(ctx, "/fresh.txt", []byte("fresh"), 0644)
	src.CreateSnapshot(ctx, "level1")
	sv1, _ := src.SnapshotView("level1")
	tape1 := newTape(t, 0, 1)
	s1 := dumpToTape(t, sv1, tape1, 1, dates)
	if s1.BaseDate == 0 {
		t.Fatal("level 1 dump has no base date")
	}

	// The incremental must be much smaller than the full.
	// (It carries only changed files plus directories.)
	if s1.FilesDumped >= 4 {
		t.Fatalf("incremental dumped %d files, want < 4", s1.FilesDumped)
	}

	// Restore: level 0, then apply level 1 with deletion sync.
	dst := newFS(t, 16384)
	restoreFromTape(t, dst, tape0)
	restoreFromTape(t, dst, tape1, func(o *RestoreOptions) { o.SyncDeletes = true })

	assertTreesEqual(t, digests(t, sv1, "/"), digests(t, dst.ActiveView(), "/"))
	if err := dst.MustCheck(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalLevels0to9(t *testing.T) {
	dates := NewDumpDates()
	dates.Record("fs", 0, 100)
	dates.Record("fs", 3, 200)
	dates.Record("fs", 5, 300)
	// Base for level 5 re-dump: latest among levels < 5 = level 3 at 200.
	if got := dates.Base("fs", 5); got != 200 {
		t.Fatalf("Base(5) = %d, want 200", got)
	}
	// Base for level 9: latest among all lower = level 5 at 300.
	if got := dates.Base("fs", 9); got != 300 {
		t.Fatalf("Base(9) = %d, want 300", got)
	}
	// Recording a new level-1 dump invalidates deeper levels.
	dates.Record("fs", 1, 400)
	if got := dates.Base("fs", 2); got != 400 {
		t.Fatalf("Base(2) = %d, want 400", got)
	}
	if got := dates.Base("fs", 9); got != 400 {
		t.Fatalf("Base(9) after shallow dump = %d, want 400", got)
	}
	if got := dates.Base("fs", 0); got != 0 {
		t.Fatalf("Base(0) = %d, want 0", got)
	}
	if got := dates.Base("unknown", 5); got != 0 {
		t.Fatalf("Base(unknown) = %d, want 0", got)
	}
}

func TestHardLinksSurviveDumpRestore(t *testing.T) {
	src := newFS(t, 4096)
	ino, _ := src.WriteFile(ctx, "/a/original", []byte("linked data"), 0644)
	aIno, _ := src.ActiveView().Namei(ctx, "/a")
	src.MkdirAll(ctx, "/b", 0755)
	bIno, _ := src.ActiveView().Namei(ctx, "/b")
	src.Link(ctx, ino, aIno, "alias1")
	src.Link(ctx, ino, bIno, "alias2")
	src.CreateSnapshot(ctx, "s")
	sv, _ := src.SnapshotView("s")
	drive := newTape(t, 0, 1)
	stats := dumpToTape(t, sv, drive, 0, nil)
	if stats.FilesDumped != 1 {
		t.Fatalf("hard-linked file dumped %d times", stats.FilesDumped)
	}

	dst := newFS(t, 4096)
	rstats := restoreFromTape(t, dst, drive)
	if rstats.LinksMade != 2 {
		t.Fatalf("LinksMade = %d, want 2", rstats.LinksMade)
	}
	// All three names must reference the same inode.
	v := dst.ActiveView()
	i1, _ := v.Namei(ctx, "/a/original")
	i2, _ := v.Namei(ctx, "/a/alias1")
	i3, _ := v.Namei(ctx, "/b/alias2")
	if i1 != i2 || i1 != i3 {
		t.Fatalf("links point at %d, %d, %d", i1, i2, i3)
	}
	st, _ := dst.GetInode(ctx, i1)
	if st.Nlink != 3 {
		t.Fatalf("nlink = %d, want 3", st.Nlink)
	}
}

func TestSparseFilesSurviveDumpRestore(t *testing.T) {
	src := newFS(t, 8192)
	ino, _ := src.Create(ctx, wafl.RootIno, "sparse", 0644, 0, 0)
	src.Write(ctx, ino, 0, []byte("head"))
	src.Write(ctx, ino, 50*wafl.BlockSize, []byte("tail"))
	src.CreateSnapshot(ctx, "s")
	sv, _ := src.SnapshotView("s")
	drive := newTape(t, 0, 1)
	stats := dumpToTape(t, sv, drive, 0, nil)
	// The dump must not store the hole: ~51 blocks of file, ~2 with data.
	if stats.BytesWritten > 40*1024 {
		t.Fatalf("sparse dump wrote %d bytes; holes not elided", stats.BytesWritten)
	}

	dst := newFS(t, 8192)
	restoreFromTape(t, dst, drive)
	got, err := dst.ActiveView().ReadFile(ctx, "/sparse")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := sv.ReadFile(ctx, "/sparse")
	if !bytes.Equal(got, want) {
		t.Fatal("sparse content mismatch")
	}
	// The restored file must also be physically sparse.
	dIno, _ := dst.ActiveView().Namei(ctx, "/sparse")
	dst.CP(ctx)
	mid, err := dst.ActiveView().BlockAt(ctx, dIno, 25)
	if err != nil {
		t.Fatal(err)
	}
	if mid != 0 {
		t.Fatal("restored file lost its hole")
	}
}

func TestMultiVolumeDumpRestore(t *testing.T) {
	src := newFS(t, 8192)
	workload.Generate(ctx, src, workload.Spec{Seed: 6, Files: 40, DirFanout: 8, MeanFileSize: 32 << 10})
	src.CreateSnapshot(ctx, "s")
	sv, _ := src.SnapshotView("s")
	// Small cartridges force spanning.
	drive := newTape(t, 400<<10, 24)
	dumpToTape(t, sv, drive, 0, nil)
	if drive.Loaded().Label == "a" {
		t.Fatal("dump never changed cartridges")
	}

	// Restore: rewind the stacker by cycling to cartridge "a".
	for drive.Loaded().Label != "a" {
		if err := drive.Load(nil); err != nil {
			t.Fatal(err)
		}
	}
	dst := newFS(t, 8192)
	drive.Rewind(nil)
	stats, err := Restore(ctx, RestoreOptions{
		FS: dst, Source: NewDriveSource(drive, nil, 24), KernelIntegrated: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.FilesRestored == 0 {
		t.Fatal("nothing restored")
	}
	assertTreesEqual(t, digests(t, sv, "/"), digests(t, dst.ActiveView(), "/"))
}

func TestRestoreResilienceToTapeCorruption(t *testing.T) {
	src := newFS(t, 8192)
	workload.Generate(ctx, src, workload.Spec{Seed: 7, Files: 30, DirFanout: 6, MeanFileSize: 4 << 10})
	src.CreateSnapshot(ctx, "s")
	sv, _ := src.SnapshotView("s")
	drive := newTape(t, 0, 1)
	stats := dumpToTape(t, sv, drive, 0, nil)

	// Corrupt a record in the middle of the file section.
	cart := drive.Loaded()
	if !cart.CorruptRecord(cart.Records() * 2 / 3) {
		t.Fatal("no record to corrupt")
	}

	dst := newFS(t, 8192)
	rstats := restoreFromTape(t, dst, drive)
	// Most files must survive ("a minor tape corruption will usually
	// affect only that single file").
	if rstats.FilesRestored < stats.FilesDumped-8 {
		t.Fatalf("only %d/%d files survived corruption", rstats.FilesRestored, stats.FilesDumped)
	}
	if rstats.SkippedUnits == 0 {
		t.Fatal("reader claims nothing was skipped")
	}
	if err := dst.MustCheck(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestUserLevelVsKernelRestorePermissions(t *testing.T) {
	// User-level mode defers directory permissions to the final pass;
	// both modes must end with identical trees.
	src := newFS(t, 4096)
	src.MkdirAll(ctx, "/locked", 0500)
	lockedIno, _ := src.ActiveView().Namei(ctx, "/locked")
	mode := uint32(0755)
	src.SetAttr(ctx, lockedIno, wafl.Attr{Mode: &mode})
	src.WriteFile(ctx, "/locked/inner.txt", []byte("x"), 0400)
	m2 := uint32(0500)
	src.SetAttr(ctx, lockedIno, wafl.Attr{Mode: &m2})
	src.CreateSnapshot(ctx, "s")
	sv, _ := src.SnapshotView("s")
	drive := newTape(t, 0, 1)
	dumpToTape(t, sv, drive, 0, nil)

	for _, kernel := range []bool{true, false} {
		dst := newFS(t, 4096)
		restoreFromTape(t, dst, drive, func(o *RestoreOptions) { o.KernelIntegrated = kernel })
		st, err := dst.ActiveView().Stat(ctx, "/locked")
		if err != nil {
			t.Fatalf("kernel=%v: %v", kernel, err)
		}
		if st.Mode&07777 != 0500 {
			t.Fatalf("kernel=%v: dir mode %o, want 0500", kernel, st.Mode&07777)
		}
		if _, err := dst.ActiveView().ReadFile(ctx, "/locked/inner.txt"); err != nil {
			t.Fatalf("kernel=%v: inner file: %v", kernel, err)
		}
	}
}

func TestDumpStatsAndMaps(t *testing.T) {
	src := newFS(t, 4096)
	src.WriteFile(ctx, "/f1", []byte("1"), 0644)
	src.WriteFile(ctx, "/f2", []byte("2"), 0644)
	src.RemovePath(ctx, "/f1") // leaves a free inode slot
	src.CreateSnapshot(ctx, "s")
	sv, _ := src.SnapshotView("s")
	drive := newTape(t, 0, 1)
	stats := dumpToTape(t, sv, drive, 0, nil)
	if stats.FilesDumped != 1 {
		t.Fatalf("FilesDumped = %d, want 1", stats.FilesDumped)
	}
	if stats.InodesMapped < 2 { // root + f2
		t.Fatalf("InodesMapped = %d", stats.InodesMapped)
	}
	if stats.Date <= 0 {
		t.Fatal("dump date not stamped")
	}
}

func TestEmptyFSDumpRestore(t *testing.T) {
	src := newFS(t, 512)
	src.CreateSnapshot(ctx, "s")
	sv, _ := src.SnapshotView("s")
	drive := newTape(t, 0, 1)
	stats := dumpToTape(t, sv, drive, 0, nil)
	if stats.DirsDumped != 1 {
		t.Fatalf("DirsDumped = %d, want 1 (root)", stats.DirsDumped)
	}
	dst := newFS(t, 512)
	rstats := restoreFromTape(t, dst, drive)
	if rstats.FilesRestored != 0 {
		t.Fatalf("restored %d files from empty dump", rstats.FilesRestored)
	}
}

func TestIncrementalSyncSparesUntouchedDirectories(t *testing.T) {
	// Regression: an incremental omits unchanged directories, and
	// applying it with SyncDeletes must not treat their absence from
	// the tape as "everything inside was deleted".
	src := newFS(t, 8192)
	dates := NewDumpDates()
	src.WriteFile(ctx, "/untouched/deep/keeper.txt", []byte("survives"), 0644)
	src.WriteFile(ctx, "/busy/worker.txt", []byte("v1"), 0644)
	src.CreateSnapshot(ctx, "l0")
	sv0, _ := src.SnapshotView("l0")
	tape0 := newTape(t, 0, 1)
	dumpToTape(t, sv0, tape0, 0, dates)

	// Change only /busy.
	src.WriteFile(ctx, "/busy/worker.txt", []byte("v2"), 0644)
	src.RemovePath(ctx, "/busy/worker.txt")
	src.WriteFile(ctx, "/busy/other.txt", []byte("new"), 0644)
	src.CreateSnapshot(ctx, "l1")
	sv1, _ := src.SnapshotView("l1")
	tape1 := newTape(t, 0, 1)
	dumpToTape(t, sv1, tape1, 1, dates)

	dst := newFS(t, 8192)
	restoreFromTape(t, dst, tape0)
	restoreFromTape(t, dst, tape1, func(o *RestoreOptions) { o.SyncDeletes = true })

	got, err := dst.ActiveView().ReadFile(ctx, "/untouched/deep/keeper.txt")
	if err != nil || string(got) != "survives" {
		t.Fatalf("untouched dir damaged by incremental sync: %q, %v", got, err)
	}
	if _, err := dst.ActiveView().ReadFile(ctx, "/busy/worker.txt"); err == nil {
		t.Fatal("deleted file survived the sync")
	}
	assertTreesEqual(t, digests(t, sv1, "/"), digests(t, dst.ActiveView(), "/"))
}
