package logical

import (
	"bytes"
	"testing"

	"repro/internal/wafl"
)

// FuzzDecodeDirEnts hammers the directory-record decoder with
// arbitrary bytes. It must never panic, and anything it accepts must
// survive a re-encode/re-decode round trip unchanged — the property
// restore depends on when it replays directory records from tape.
func FuzzDecodeDirEnts(f *testing.F) {
	// Seed with real encodings, including the edge shapes: empty list,
	// empty name, long name, high inode numbers, every type byte.
	f.Add([]byte{})
	f.Add(encodeDirEnts([]wafl.DirEnt{
		{Ino: 2, Type: wafl.ModeDir, Name: "."},
		{Ino: 2, Type: wafl.ModeDir, Name: ".."},
		{Ino: 7, Type: wafl.ModeReg, Name: "file0001.dat"},
	}))
	f.Add(encodeDirEnts([]wafl.DirEnt{
		{Ino: 1<<32 - 1, Type: wafl.ModeSymlink, Name: string(bytes.Repeat([]byte("n"), 255))},
		{Ino: 0, Type: 0, Name: ""},
	}))
	// A real record with a truncated tail, as a torn tape would leave.
	whole := encodeDirEnts([]wafl.DirEnt{{Ino: 9, Type: wafl.ModeReg, Name: "victim"}})
	f.Add(whole[:len(whole)-3])

	f.Fuzz(func(t *testing.T, data []byte) {
		ents, err := DecodeDirEnts(data)
		if err != nil {
			return
		}
		again, err := DecodeDirEnts(encodeDirEnts(ents))
		if err != nil {
			t.Fatalf("re-decode of accepted input failed: %v", err)
		}
		if len(again) != len(ents) {
			t.Fatalf("round trip changed entry count: %d -> %d", len(ents), len(again))
		}
		for i := range ents {
			if again[i] != ents[i] {
				t.Fatalf("round trip changed entry %d: %+v -> %+v", i, ents[i], again[i])
			}
		}
	})
}
