package logical

import (
	"errors"
	"fmt"
	"io"
	"testing"

	"repro/internal/dumpfmt"
	"repro/internal/tape"
	"repro/internal/wafl"
	"repro/internal/workload"
)

// memSink collects a shard stream's records for byte comparison and
// replay.
type memSink struct{ recs [][]byte }

func (s *memSink) WriteRecord(data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	s.recs = append(s.recs, cp)
	return nil
}

func (s *memSink) NextVolume() error { return errors.New("memSink: single volume") }

func (s *memSink) bytes() []byte {
	var b []byte
	for _, r := range s.recs {
		b = append(b, r...)
	}
	return b
}

type memSource struct {
	recs [][]byte
	pos  int
}

func (s *memSink) source() *memSource { return &memSource{recs: s.recs} }

func (s *memSource) ReadRecord() ([]byte, error) {
	if s.pos >= len(s.recs) {
		return nil, io.EOF
	}
	r := s.recs[s.pos]
	s.pos++
	return r, nil
}

func parallelLogicalFS(t *testing.T, seed int64) (*wafl.FS, *wafl.View) {
	t.Helper()
	src := newFS(t, 16384)
	if _, err := workload.Generate(ctx, src, workload.Spec{
		Seed: seed, Files: 40, DirFanout: 6, MeanFileSize: 12 << 10,
		Symlinks: 3, Hardlinks: 2,
	}); err != nil {
		t.Fatal(err)
	}
	if err := src.CreateSnapshot(ctx, "s"); err != nil {
		t.Fatal(err)
	}
	sv, _ := src.SnapshotView("s")
	return src, sv
}

// TestLogicalParallelMatchesShardedStreams proves the tentpole
// byte-identity contract: one Sinks dump with parallel readers writes,
// per shard, exactly the stream a caller-driven Shard/Shards dump of
// the same slice writes. Parallelism changes only the clock.
func TestLogicalParallelMatchesShardedStreams(t *testing.T) {
	_, sv := parallelLogicalFS(t, 71)
	const nShards = 4

	// Reference: one sequential dump per shard, caller-driven.
	want := make([]*memSink, nShards)
	for k := 0; k < nShards; k++ {
		want[k] = &memSink{}
		if _, err := Dump(ctx, DumpOptions{
			View: sv, Sink: want[k], Label: "par", ReadAhead: 8,
			Shard: k, Shards: nShards, CheckpointEvery: 3,
		}); err != nil {
			t.Fatalf("shard %d reference dump: %v", k, err)
		}
	}

	// One parallel invocation drives all four streams.
	sinks := make([]dumpfmt.Sink, nShards)
	got := make([]*memSink, nShards)
	for k := range sinks {
		got[k] = &memSink{}
		sinks[k] = got[k]
	}
	stats, err := Dump(ctx, DumpOptions{
		View: sv, Sinks: sinks, Label: "par", ReadAhead: 8,
		Readers: 3, CheckpointEvery: 3,
	})
	if err != nil {
		t.Fatalf("parallel dump: %v", err)
	}

	if len(stats.ShardResults) != nShards {
		t.Fatalf("ShardResults = %d entries, want %d", len(stats.ShardResults), nShards)
	}
	files, bytes := 0, int64(0)
	for k, r := range stats.ShardResults {
		if r.Err != nil {
			t.Fatalf("shard %d: %v", k, r.Err)
		}
		files += r.FilesDumped
		bytes += r.BytesWritten
	}
	if files != stats.FilesDumped || bytes != stats.BytesWritten {
		t.Fatalf("shard sums files=%d bytes=%d != totals files=%d bytes=%d",
			files, bytes, stats.FilesDumped, stats.BytesWritten)
	}
	if stats.FilesDumped == 0 {
		t.Fatal("parallel dump dumped no files")
	}

	for k := 0; k < nShards; k++ {
		w, g := want[k].bytes(), got[k].bytes()
		if string(w) != string(g) {
			t.Fatalf("shard %d stream differs: sequential %d bytes, parallel %d bytes", k, len(w), len(g))
		}
	}
}

// TestLogicalParallelRestoreOrderIndependence: each shard stream is
// self-contained (full maps, all directories), so restore may apply
// the set in any order and converge to the same tree.
func TestLogicalParallelRestoreOrderIndependence(t *testing.T) {
	_, sv := parallelLogicalFS(t, 72)
	const nShards = 4

	sinks := make([]dumpfmt.Sink, nShards)
	streams := make([]*memSink, nShards)
	for k := range sinks {
		streams[k] = &memSink{}
		sinks[k] = streams[k]
	}
	if _, err := Dump(ctx, DumpOptions{
		View: sv, Sinks: sinks, Label: "perm", ReadAhead: 8, Readers: 2,
	}); err != nil {
		t.Fatalf("parallel dump: %v", err)
	}

	wantTree := digests(t, sv, "/")
	for _, order := range [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}, {1, 3, 0, 2}} {
		dst := newFS(t, 16384)
		for _, k := range order {
			if _, err := Restore(ctx, RestoreOptions{
				FS: dst, Source: streams[k].source(), KernelIntegrated: true,
			}); err != nil {
				t.Fatalf("order %v: restoring shard %d: %v", order, k, err)
			}
		}
		assertTreesEqual(t, wantTree, digests(t, dst.ActiveView(), "/"))
		if err := dst.MustCheck(ctx); err != nil {
			t.Fatalf("order %v: %v", order, err)
		}
	}
}

// TestLogicalParallelShardFaultIsolatedAndResumes is the chaos story
// on the logical engine: one drive of four drops offline mid-dump, the
// sibling shards run to completion, the torn shard hands back its own
// checkpoint, a ResumeShards re-invocation redumps only that shard's
// remainder, and restoring all the streams rebuilds the exact tree.
func TestLogicalParallelShardFaultIsolatedAndResumes(t *testing.T) {
	_, sv := parallelLogicalFS(t, 73)
	const nShards = 4
	const faulted = 2

	drives := make([]*tape.Drive, nShards)
	sinks := make([]dumpfmt.Sink, nShards)
	for k := range drives {
		drives[k] = newTape(t, 0, 1)
		sinks[k] = &DriveSink{Drive: drives[k]}
	}
	drives[faulted].InjectFaults(tape.FaultConfig{OfflineAfterRecords: 14})

	stats, err := Dump(ctx, DumpOptions{
		View: sv, Sinks: sinks, Label: "chaos", ReadAhead: 8,
		Readers: 2, CheckpointEvery: 2,
	})
	if err == nil {
		t.Fatal("dump with a dead drive reported success")
	}
	if !errors.Is(err, tape.ErrOffline) {
		t.Fatalf("dump error = %v, want drive offline", err)
	}
	for k, r := range stats.ShardResults {
		if k == faulted {
			if r.Err == nil {
				t.Fatal("faulted shard reported no error")
			}
			if r.Checkpoint == nil || r.Checkpoint.Shard != faulted || r.Checkpoint.Shards != nShards {
				t.Fatalf("faulted shard checkpoint = %+v", r.Checkpoint)
			}
			if r.Checkpoint.LastIno == 0 || r.FilesDumped == 0 {
				t.Fatalf("offline hit before shard made progress (files=%d, ckpt=%+v); raise OfflineAfterRecords",
					r.FilesDumped, r.Checkpoint)
			}
			continue
		}
		if r.Err != nil {
			t.Fatalf("sibling shard %d did not complete: %v", k, r.Err)
		}
		if r.BytesWritten == 0 {
			t.Fatalf("sibling shard %d wrote nothing", k)
		}
	}

	// The drive comes back; what reached tape before the outage is
	// intact. Resume redumps only the torn shard: siblings get
	// synthetic completed checkpoints, so their continuation streams
	// carry no files.
	drives[faulted].SetOffline(false)
	drives[faulted].Flush(nil)
	torn := stats.ShardResults[faulted].Checkpoint

	contSinks := make([]dumpfmt.Sink, nShards)
	contStreams := make([]*memSink, nShards)
	resume := make([]*Checkpoint, nShards)
	for k := range contSinks {
		contStreams[k] = &memSink{}
		contSinks[k] = contStreams[k]
		if k == faulted {
			resume[k] = torn
		} else {
			resume[k] = &Checkpoint{
				Date: torn.Date, Level: torn.Level, LastIno: wafl.Inum(1<<31 - 1),
				Shard: k, Shards: nShards,
			}
		}
	}
	stats2, err := Dump(ctx, DumpOptions{
		View: sv, Sinks: contSinks, Label: "chaos", ReadAhead: 8,
		Readers: 2, CheckpointEvery: 2, ResumeShards: resume,
	})
	if err != nil {
		t.Fatalf("resumed dump: %v", err)
	}
	if stats2.Date != stats.Date {
		t.Fatalf("resumed dump date %d != original %d", stats2.Date, stats.Date)
	}
	if r := stats2.ShardResults[faulted]; r.FilesSkipped == 0 || r.FilesDumped == 0 {
		t.Fatalf("resumed shard skipped %d, dumped %d; want both > 0", r.FilesSkipped, r.FilesDumped)
	}
	for k, r := range stats2.ShardResults {
		if k != faulted && r.FilesDumped != 0 {
			t.Fatalf("completed shard %d redumped %d files on resume", k, r.FilesDumped)
		}
	}

	// Restore the three intact tapes, the torn tape (salvaging its
	// tail), and the continuation stream; the tree must be exact.
	dst := newFS(t, 16384)
	for k := 0; k < nShards; k++ {
		drives[k].Rewind(nil)
		salvage := k == faulted
		if _, err := Restore(ctx, RestoreOptions{
			FS: dst, Source: NewDriveSource(drives[k], nil, 1),
			KernelIntegrated: true, Salvage: salvage,
		}); err != nil {
			t.Fatalf("restoring shard %d tape: %v", k, err)
		}
	}
	if _, err := Restore(ctx, RestoreOptions{
		FS: dst, Source: contStreams[faulted].source(), KernelIntegrated: true,
	}); err != nil {
		t.Fatalf("restoring continuation stream: %v", err)
	}
	assertTreesEqual(t, digests(t, sv, "/"), digests(t, dst.ActiveView(), "/"))
	if err := dst.MustCheck(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestLogicalParallelIncrementalChain runs a parallel full and a
// parallel incremental on top, restoring both sets.
func TestLogicalParallelIncrementalChain(t *testing.T) {
	src, sv := parallelLogicalFS(t, 74)
	const nShards = 3
	dates := NewDumpDates()

	dump := func(view *wafl.View, level int) []*memSink {
		t.Helper()
		sinks := make([]dumpfmt.Sink, nShards)
		streams := make([]*memSink, nShards)
		for k := range sinks {
			streams[k] = &memSink{}
			sinks[k] = streams[k]
		}
		if _, err := Dump(ctx, DumpOptions{
			View: view, Level: level, Dates: dates, FSID: "test",
			Sinks: sinks, Label: fmt.Sprintf("l%d", level), ReadAhead: 8, Readers: 2,
		}); err != nil {
			t.Fatalf("level %d parallel dump: %v", level, err)
		}
		return streams
	}

	full := dump(sv, 0)

	// Mutate and snapshot again for the level-1.
	if _, err := src.WriteFile(ctx, "/inc/new.txt", []byte("new since full"), 0644); err != nil {
		t.Fatal(err)
	}
	if err := src.CreateSnapshot(ctx, "s2"); err != nil {
		t.Fatal(err)
	}
	sv2, _ := src.SnapshotView("s2")
	incr := dump(sv2, 1)

	dst := newFS(t, 16384)
	for _, set := range [][]*memSink{full, incr} {
		for k, s := range set {
			if _, err := Restore(ctx, RestoreOptions{
				FS: dst, Source: s.source(), KernelIntegrated: true,
			}); err != nil {
				t.Fatalf("restoring stream %d: %v", k, err)
			}
		}
	}
	assertTreesEqual(t, digests(t, sv2, "/"), digests(t, dst.ActiveView(), "/"))
	if err := dst.MustCheck(ctx); err != nil {
		t.Fatal(err)
	}
}
