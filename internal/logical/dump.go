package logical

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/bufpool"
	"repro/internal/dumpfmt"
	"repro/internal/obs"
	"repro/internal/wafl"
)

// StageRecorder receives stage boundaries so the benchmark harness can
// attribute elapsed time and resource utilization to dump phases the
// way the paper's Table 3 does. A nil recorder is ignored.
type StageRecorder interface {
	Begin(name string)
	End()
}

// DumpOptions configures a logical dump.
type DumpOptions struct {
	// View is the filesystem view to dump — normally a snapshot view,
	// which is what gives dump its self-consistent image (paper §3).
	View *wafl.View
	// Level is the incremental level, 0..9.
	Level int
	// Dates is the dump-date history; nil treats every level as 0.
	// On success the dump records its date here.
	Dates *DumpDates
	// FSID identifies the filesystem in Dates (e.g. "home").
	FSID string
	// Subtree restricts the dump to the directory at this path
	// ("" = whole filesystem) — "a user can back up a subset of a
	// data in a file system".
	Subtree string
	// Exclude, if set, filters out entries by name ("logical backup
	// schemes often take advantage of filters").
	Exclude func(name string) bool
	// Sink receives the stream of a single-stream dump. Mutually
	// exclusive with Sinks.
	Sink dumpfmt.Sink
	// Sinks fans one Dump call out across parallel tape drives: shard
	// k of len(Sinks) writes a self-contained stream to Sinks[k] —
	// full inode maps and all directories (so restore can map names),
	// plus the k-th contiguous slice of the Phase IV file list in
	// inode order. The shards stream concurrently on the internal
	// pipeline; restore applies the shard streams in any order. A
	// shard failure does not abort its siblings: the other shards run
	// to completion and the failed shard's checkpoint comes back in
	// ShardResults for a single-shard resume.
	Sinks []dumpfmt.Sink
	// Readers is the number of parallel Phase IV chunk readers per
	// shard (Sinks mode; default 1). Readers pull file chunks off a
	// shared plan and the per-drive writer reassembles them in stream
	// order, so the bytes on tape do not depend on Readers.
	Readers int
	// Shard/Shards split the Phase IV file list across parallel tape
	// drives when the caller drives each shard itself (one Dump call
	// per drive): shard k of n writes full maps and directories plus
	// the k-th contiguous slice of the file list — the same slice the
	// Sinks mode computes, so the streams are interchangeable. Zero
	// Shards means no sharding. With Sinks set these must be zero.
	Shard  int
	Shards int
	// Label names the dump on tape.
	Label string
	// ReadAhead is the dump engine's own read-ahead depth in blocks
	// (paper §3: "Network Appliance's dump generates its own
	// read-ahead policy"). 0 disables it.
	ReadAhead int
	// Stages receives stage boundaries; may be nil.
	Stages StageRecorder
	// CheckpointEvery emits a durable TS_CHECKPOINT record after every
	// N files in Phase IV, making the dump restartable (§4 of the
	// paper restarts image dumps at tape boundaries; checkpoints give
	// the logical stream the same property). 0 disables checkpoints
	// and keeps the stream byte-identical to older dumps.
	CheckpointEvery int
	// Resume continues an interrupted single-stream dump from the
	// checkpoint a failed Dump returned: Phases I-III run again (the
	// new stream must be self-contained enough for restore to map
	// names), but Phase IV skips files already durably on the previous
	// stream.
	Resume *Checkpoint
	// ResumeShards, len(Sinks) long, resumes individual shards of a
	// parallel dump: entry k is shard k's checkpoint from a previous
	// run's ShardResults, or nil to dump that shard from its start.
	// All checkpoints must carry the same interrupted dump's date, so
	// every stream of the set describes one self-consistent dump.
	ResumeShards []*Checkpoint
	// Log, if set, receives a line per notable recovery event
	// (hole-mapped blocks, for the operator's damage report).
	Log func(line string)
	// FileIndex, if set, receives one entry per file dumped in Phase
	// IV: the file's dump-relative path, its inode, and the stream
	// position (in 1 KB dump units) where its header begins. The
	// backup catalog records these so a later single-file restore can
	// tell which dump sets contain the path — and a seek-capable
	// source can space directly to it.
	FileIndex func(path string, ino wafl.Inum, unit int64)
}

// Checkpoint is the durable progress of an interrupted dump. It names
// the last file inode known to be wholly on media; re-invoking Dump
// with it resumes after that inode instead of at block zero.
type Checkpoint struct {
	Date    int64 // dump date of the interrupted run (kept across streams)
	Level   int
	LastIno wafl.Inum // 0 = no file completed
	// Shard/Shards record the shard identity of a sharded dump (both
	// zero for an unsharded stream), so a resume cannot be applied to
	// the wrong slice of the file list.
	Shard  int
	Shards int
}

// DamagedBlock identifies a file block the dump could not read even
// with retries and RAID recovery. The block was hole-mapped, so the
// restored file reads zeros there; everything else restores intact.
type DamagedBlock struct {
	Ino wafl.Inum
	Fbn uint32 // file block number
	Err string // the final read error, for the operator's report
}

// DumpStats reports what a dump did.
type DumpStats struct {
	Date         int64
	BaseDate     int64
	InodesMapped int
	DirsDumped   int
	FilesDumped  int
	FilesSkipped int // already on media per the resume checkpoint
	BytesWritten int64
	// Damaged lists file blocks hole-mapped after unrecoverable read
	// faults — the "exactly which inodes were damaged" report.
	Damaged []DamagedBlock
	// Checkpoint is set (alongside a non-nil error) when a
	// single-stream dump aborted but can resume; nil on success or
	// when checkpoints were disabled and no resume state existed.
	Checkpoint *Checkpoint
	// ShardResults is the per-shard outcome of a parallel (Sinks)
	// dump, one entry per stream; nil for a single-stream dump. The
	// top-level file and byte counters aggregate across shards;
	// DirsDumped counts unique directories (every stream carries all
	// of them).
	ShardResults []ShardResult
}

// ShardResult is one shard's outcome within a parallel dump.
type ShardResult struct {
	Shard        int
	FilesDumped  int
	FilesSkipped int // already on media per the resume checkpoint
	BytesWritten int64
	// Damaged lists this shard's hole-mapped blocks, in stream order.
	Damaged []DamagedBlock
	// Checkpoint is set (alongside a non-nil Err) when the shard
	// aborted but can resume from its last durable checkpoint.
	Checkpoint *Checkpoint
	// Err is the shard's failure, nil when the shard completed.
	Err error
}

// dumpState carries the four phases' shared working set.
type dumpState struct {
	opts    DumpOptions
	view    *wafl.View
	date    int64
	ddate   int64
	rootIno wafl.Inum

	used   *dumpfmt.InoMap // allocated inodes in the view (subtree)
	dump   *dumpfmt.InoMap // inodes to be dumped
	isDir  map[wafl.Inum]bool
	parent map[wafl.Inum]wafl.Inum
	names  map[wafl.Inum]string // name each inode was first reached by
	inodes map[wafl.Inum]wafl.Inode

	// Cross-file read-ahead state (Phase IV). The dump engine runs its
	// own read-ahead policy in inode order — exactly what the paper
	// says the in-kernel dump does (§3), and the reason it is not at
	// the mercy of the filesystem's per-file policy. The lookahead
	// cursor walks the upcoming (file, block) sequence, keeping
	// ReadAhead blocks in flight in front of the tape cursor.
	fileList []wafl.Inum
	laFile   int
	laFbn    uint32
	issued   int64
	consumed int64

	// chunkBuf is the pooled Phase IV read buffer, sized for a full
	// header's worth of segments: each chunk is read (in runs) before
	// its header goes out, so an unreadable block can be demoted to a
	// hole in the map instead of aborting a half-written record.
	chunkBuf *[]byte

	stats   *DumpStats
	ckptIno wafl.Inum // last inode durably checkpointed to media
}

// logf reports a recovery event to the operator's log, if any.
func (st *dumpState) logf(format string, args ...any) {
	if st.opts.Log != nil {
		st.opts.Log(fmt.Sprintf(format, args...))
	}
}

// runBlocks is how many file blocks Phase IV reads per bulk ReadAt.
const runBlocks = 16

// Dump runs the four-phase logical dump and writes the stream to
// opts.Sink, or — when opts.Sinks is set — fans Phase IV out across
// parallel per-drive streams from this one call.
func Dump(ctx context.Context, opts DumpOptions) (*DumpStats, error) {
	multi := len(opts.Sinks) > 0
	if opts.View == nil {
		return nil, fmt.Errorf("logical: nil view")
	}
	if multi {
		if opts.Sink != nil {
			return nil, fmt.Errorf("logical: Sink and Sinks are mutually exclusive")
		}
		if opts.Shard != 0 || opts.Shards != 0 {
			return nil, fmt.Errorf("logical: Shard/Shards are caller-driven sharding; Sinks shards internally")
		}
		if opts.Resume != nil {
			return nil, fmt.Errorf("logical: use ResumeShards to resume a parallel dump")
		}
		if opts.ResumeShards != nil && len(opts.ResumeShards) != len(opts.Sinks) {
			return nil, fmt.Errorf("logical: ResumeShards has %d entries for %d sinks", len(opts.ResumeShards), len(opts.Sinks))
		}
		for i, s := range opts.Sinks {
			if s == nil {
				return nil, fmt.Errorf("logical: nil sink %d", i)
			}
		}
	} else {
		if opts.Sink == nil {
			return nil, fmt.Errorf("logical: nil sink")
		}
		if opts.ResumeShards != nil {
			return nil, fmt.Errorf("logical: ResumeShards requires Sinks")
		}
		if opts.Shards != 0 && (opts.Shard < 0 || opts.Shard >= opts.Shards) {
			return nil, fmt.Errorf("logical: shard %d of %d out of range", opts.Shard, opts.Shards)
		}
	}
	if opts.Level < 0 || opts.Level > MaxLevel {
		return nil, fmt.Errorf("logical: bad level %d", opts.Level)
	}
	fs := opts.View.FS()
	st := &dumpState{
		opts:   opts,
		view:   opts.View,
		date:   fs.Clock(),
		isDir:  make(map[wafl.Inum]bool),
		parent: make(map[wafl.Inum]wafl.Inum),
		names:  make(map[wafl.Inum]string),
		inodes: make(map[wafl.Inum]wafl.Inode),
	}
	if opts.Dates != nil {
		st.ddate = opts.Dates.Base(opts.FSID, opts.Level)
	}
	if opts.Resume != nil {
		if opts.Resume.Level != opts.Level {
			return nil, fmt.Errorf("logical: resume checkpoint is level %d, dump is level %d", opts.Resume.Level, opts.Level)
		}
		if opts.Resume.Shard != opts.Shard || opts.Resume.Shards != opts.Shards {
			return nil, fmt.Errorf("logical: resume checkpoint is shard %d of %d, dump is shard %d of %d",
				opts.Resume.Shard, opts.Resume.Shards, opts.Shard, opts.Shards)
		}
		// The continuation stream carries the interrupted dump's date,
		// so all its streams describe one self-consistent dump set.
		st.date = opts.Resume.Date
		st.ckptIno = opts.Resume.LastIno
	}
	// Parallel resume: every shard checkpoint must describe the same
	// interrupted dump, whose date the continuation set inherits.
	var resumeDate int64
	for k, r := range opts.ResumeShards {
		if r == nil {
			continue
		}
		if r.Level != opts.Level {
			return nil, fmt.Errorf("logical: shard %d resume checkpoint is level %d, dump is level %d", k, r.Level, opts.Level)
		}
		if r.Shard != k || r.Shards != len(opts.Sinks) {
			return nil, fmt.Errorf("logical: resume checkpoint for shard %d of %d given as shard %d of %d",
				r.Shard, r.Shards, k, len(opts.Sinks))
		}
		if resumeDate != 0 && resumeDate != r.Date {
			return nil, fmt.Errorf("logical: shard resume checkpoints disagree on dump date")
		}
		resumeDate = r.Date
	}
	if resumeDate != 0 {
		st.date = resumeDate
	}
	root := wafl.RootIno
	if opts.Subtree != "" {
		var err error
		root, err = opts.View.Namei(ctx, opts.Subtree)
		if err != nil {
			return nil, fmt.Errorf("logical: subtree %q: %w", opts.Subtree, err)
		}
	}
	st.rootIno = root
	st.chunkBuf = bufpool.Get(dumpfmt.MaxSegsPerHeader * dumpfmt.TPBSize)
	defer bufpool.Put(st.chunkBuf)

	ctx, dumpSpan := obs.Start(ctx, "logical.dump")
	dumpSpan.SetAttr("level", opts.Level)
	defer func() {
		if st.stats != nil {
			dumpSpan.SetAttr("files", st.stats.FilesDumped)
			dumpSpan.SetAttr("dirs", st.stats.DirsDumped)
			dumpSpan.SetAttr("bytes", st.stats.BytesWritten)
		}
		dumpSpan.End()
	}()

	var phaseSpan *obs.Span
	begin := func(name string) {
		if opts.Stages != nil {
			opts.Stages.Begin(name)
		}
		_, phaseSpan = obs.Start(ctx, phaseSpanName(name))
	}
	end := func() {
		if opts.Stages != nil {
			opts.Stages.End()
		}
		phaseSpan.End()
		phaseSpan = nil
	}

	// Phase I: map the files and directories to be dumped.
	begin("Mapping files and directories")
	if err := st.phaseMap(ctx); err != nil {
		end()
		return nil, err
	}
	end()

	// The free-inode map and the sorted Phase III/IV worklists are
	// computed once and shared by the single-stream path and every
	// parallel shard.
	clri := dumpfmt.NewInoMap(uint32(st.view.NumInodes(ctx)))
	for i := uint32(wafl.RootIno); i < uint32(st.view.NumInodes(ctx)); i++ {
		if !st.used.Has(i) {
			clri.Set(i)
		}
	}
	var dirInos, fileInos []wafl.Inum
	for ino := range st.inodes {
		if !st.dump.Has(uint32(ino)) {
			continue
		}
		if st.isDir[ino] {
			dirInos = append(dirInos, ino)
		} else {
			fileInos = append(fileInos, ino)
		}
	}
	sort.Slice(dirInos, func(i, j int) bool { return dirInos[i] < dirInos[j] })
	sort.Slice(fileInos, func(i, j int) bool { return fileInos[i] < fileInos[j] })

	if multi {
		return st.dumpParallel(ctx, clri, dirInos, fileInos, begin, end)
	}

	w, err := dumpfmt.NewWriter(opts.Sink, opts.Label, st.date, st.ddate, int32(opts.Level))
	if err != nil {
		return nil, err
	}

	stats := &DumpStats{Date: st.date, BaseDate: st.ddate, InodesMapped: st.used.Count()}
	st.stats = stats

	// fail wraps an unrecoverable error with the resumable state: the
	// last inode durably checkpointed (possibly inherited from the
	// attempt this one resumed), so the next invocation can continue.
	fail := func(err error) (*DumpStats, error) {
		if opts.CheckpointEvery > 0 || opts.Resume != nil {
			stats.Checkpoint = &Checkpoint{
				Date: st.date, Level: opts.Level, LastIno: st.ckptIno,
				Shard: opts.Shard, Shards: opts.Shards,
			}
		}
		return stats, err
	}

	// Write the two maps the format prescribes: inodes free at dump
	// time (TS_CLRI) and inodes on this tape (TS_BITS). A sharded
	// stream carries the full maps: restore tolerates TS_BITS naming
	// files that arrive on sibling streams.
	if err := writeMap(w, dumpfmt.TSClri, clri, uint32(st.rootIno)); err != nil {
		return fail(err)
	}
	if err := writeMap(w, dumpfmt.TSBits, st.dump, uint32(st.rootIno)); err != nil {
		return fail(err)
	}

	// Phase III: dump directories, in ascending inode order.
	begin("Dumping directories")
	for _, ino := range dirInos {
		if err := ctx.Err(); err != nil {
			end()
			return fail(err)
		}
		if err := st.dumpDirectory(ctx, w, ino); err != nil {
			end()
			return fail(err)
		}
		stats.DirsDumped++
	}
	end()

	// Phase IV: dump files, in ascending inode order, with the dump
	// engine's own cross-file read-ahead running in front. A
	// caller-driven shard dumps only its contiguous slice of the list;
	// a resumed dump skips the files its checkpoint vouches for.
	begin("Dumping files")
	if opts.Shards > 1 {
		lo := len(fileInos) * opts.Shard / opts.Shards
		hi := len(fileInos) * (opts.Shard + 1) / opts.Shards
		fileInos = fileInos[lo:hi]
	}
	if st.ckptIno > 0 {
		skip := sort.Search(len(fileInos), func(i int) bool { return fileInos[i] > st.ckptIno })
		stats.FilesSkipped = skip
		fileInos = fileInos[skip:]
	}
	st.fileList = fileInos
	sinceCkpt := 0
	for _, ino := range fileInos {
		if err := ctx.Err(); err != nil {
			end()
			return fail(err)
		}
		if opts.FileIndex != nil {
			// Emitted before the file so Unit names the stream position
			// of its header. A resumed dump indexes only this stream's
			// files; the skipped ones are on the prior attempt's index.
			opts.FileIndex(st.path(ino), ino, w.Tapea())
		}
		if err := st.dumpFile(ctx, w, ino); err != nil {
			end()
			return fail(err)
		}
		stats.FilesDumped++
		sinceCkpt++
		if opts.CheckpointEvery > 0 && sinceCkpt >= opts.CheckpointEvery {
			if err := w.Checkpoint(uint32(ino)); err != nil {
				end()
				return fail(err)
			}
			// A sink that accepts records provisionally must confirm
			// durability before the checkpoint may vouch for this file.
			if sy, ok := opts.Sink.(dumpfmt.Syncer); ok {
				if err := sy.Sync(); err != nil {
					end()
					return fail(err)
				}
			}
			st.ckptIno = ino
			sinceCkpt = 0
		}
	}
	end()

	if err := w.Close(); err != nil {
		return fail(err)
	}
	stats.BytesWritten = w.Written()
	if opts.Dates != nil {
		opts.Dates.Record(opts.FSID, opts.Level, st.date)
	}
	m := obs.MetricsFrom(ctx)
	l := obs.Labels{"fsid": opts.FSID}
	m.Counter("logical_dump_files_total", l).Add(int64(stats.FilesDumped))
	m.Counter("logical_dump_dirs_total", l).Add(int64(stats.DirsDumped))
	m.Counter("logical_dump_bytes_total", l).Add(stats.BytesWritten)
	m.Counter("logical_dump_damaged_blocks_total", l).Add(int64(len(stats.Damaged)))
	return stats, nil
}

// phaseSpanName maps the harness-facing stage names to span names,
// numbered the way the paper numbers the dump's phases.
func phaseSpanName(stage string) string {
	switch stage {
	case "Mapping files and directories":
		return "logical.phase12_map"
	case "Dumping directories":
		return "logical.phase3_dirs"
	case "Dumping files":
		return "logical.phase4_files"
	}
	return "logical." + obs.Slug(stage)
}

// phaseMap walks the subtree, recording every allocated inode, its
// parent, and whether it needs dumping (Phase I), then propagates
// directory requirements up to the root (Phase II).
func (st *dumpState) phaseMap(ctx context.Context) error {
	st.used = dumpfmt.NewInoMap(uint32(st.view.NumInodes(ctx)))
	st.dump = dumpfmt.NewInoMap(uint32(st.view.NumInodes(ctx)))

	type qent struct {
		ino, parent wafl.Inum
		name        string
	}
	queue := []qent{{st.rootIno, st.rootIno, ""}}
	visited := map[wafl.Inum]bool{}
	for len(queue) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		cur := queue[0]
		queue = queue[1:]
		if visited[cur.ino] {
			continue
		}
		visited[cur.ino] = true
		inode, err := st.view.GetInode(ctx, cur.ino)
		if err != nil {
			return err
		}
		st.used.Set(uint32(cur.ino))
		st.parent[cur.ino] = cur.parent
		st.names[cur.ino] = cur.name // hardlinks: the first name seen wins
		st.inodes[cur.ino] = inode
		st.isDir[cur.ino] = wafl.IsDir(inode.Mode)
		// Changed since the base date? (Level 0 has ddate 0: everything.)
		if inode.Mtime > st.ddate || inode.Ctime > st.ddate {
			st.dump.Set(uint32(cur.ino))
		}
		if wafl.IsDir(inode.Mode) {
			ents, err := st.view.Readdir(ctx, cur.ino)
			if err != nil {
				return err
			}
			for _, e := range ents {
				if e.Name == "." || e.Name == ".." {
					continue
				}
				if st.opts.Exclude != nil && st.opts.Exclude(e.Name) {
					continue
				}
				queue = append(queue, qent{e.Ino, cur.ino, e.Name})
			}
		}
	}

	// Phase II: every dumped inode needs its ancestor directories on
	// tape so restore can map names to inode numbers.
	for ino := range st.inodes {
		if !st.dump.Has(uint32(ino)) {
			continue
		}
		for p := ino; ; {
			par := st.parent[p]
			st.dump.Set(uint32(par))
			if par == p || par == st.rootIno {
				break
			}
			p = par
		}
	}
	st.dump.Set(uint32(st.rootIno))
	return nil
}

// path reconstructs an inode's dump-relative path from the Phase I
// parent and name maps ("a/b/c", "" for the dump root).
func (st *dumpState) path(ino wafl.Inum) string {
	if ino == st.rootIno {
		return ""
	}
	var parts []string
	for p := ino; p != st.rootIno; {
		parts = append(parts, st.names[p])
		par, ok := st.parent[p]
		if !ok || par == p {
			break
		}
		p = par
	}
	// Reverse into root-first order.
	var b []byte
	for i := len(parts) - 1; i >= 0; i-- {
		if len(b) > 0 {
			b = append(b, '/')
		}
		b = append(b, parts[i]...)
	}
	return string(b)
}

// writeMap emits a TS_CLRI or TS_BITS record with the bitmap as data.
func writeMap(w *dumpfmt.Writer, typ int32, m *dumpfmt.InoMap, rootIno uint32) error {
	data := m.Bytes()
	nseg := (len(data) + dumpfmt.TPBSize - 1) / dumpfmt.TPBSize
	if nseg == 0 {
		nseg = 1
	}
	addrs := make([]byte, nseg)
	for i := range addrs {
		addrs[i] = 1
	}
	h := &dumpfmt.Header{
		Type:    typ,
		Inumber: rootIno,
		Dinode:  dumpfmt.DumpInode{Size: uint64(len(data))},
		Count:   int32(nseg),
		Addrs:   addrs,
	}
	if err := w.WriteHeader(h); err != nil {
		return err
	}
	for off := 0; off < nseg*dumpfmt.TPBSize; off += dumpfmt.TPBSize {
		endOff := off + dumpfmt.TPBSize
		if endOff > len(data) {
			endOff = len(data)
		}
		var seg []byte
		if off < len(data) {
			seg = data[off:endOff]
		}
		if err := w.WriteSegment(seg); err != nil {
			return err
		}
	}
	return nil
}

// canonical directory record encoding: [ino u32][type u8][len u16][name].
func encodeDirEnts(ents []wafl.DirEnt) []byte {
	var buf []byte
	var tmp [7]byte
	for _, e := range ents {
		binary.LittleEndian.PutUint32(tmp[0:], uint32(e.Ino))
		tmp[4] = byte(e.Type >> 12)
		binary.LittleEndian.PutUint16(tmp[5:], uint16(len(e.Name)))
		buf = append(buf, tmp[:]...)
		buf = append(buf, e.Name...)
	}
	return buf
}

// DecodeDirEnts reverses encodeDirEnts; exported for restore and tests.
func DecodeDirEnts(data []byte) ([]wafl.DirEnt, error) {
	var ents []wafl.DirEnt
	for off := 0; off < len(data); {
		if off+7 > len(data) {
			return nil, fmt.Errorf("logical: truncated directory record at %d", off)
		}
		ino := binary.LittleEndian.Uint32(data[off:])
		typ := uint32(data[off+4]) << 12
		n := int(binary.LittleEndian.Uint16(data[off+5:]))
		off += 7
		if off+n > len(data) {
			return nil, fmt.Errorf("logical: truncated directory name at %d", off)
		}
		ents = append(ents, wafl.DirEnt{Ino: wafl.Inum(ino), Type: typ, Name: string(data[off : off+n])})
		off += n
	}
	return ents, nil
}

// dumpDirectory writes one directory's canonical entry list.
func (st *dumpState) dumpDirectory(ctx context.Context, w *dumpfmt.Writer, ino wafl.Inum) error {
	ents, err := st.view.Readdir(ctx, ino)
	if err != nil {
		return err
	}
	// Apply the exclusion filter to the entry list too, so restore
	// never learns about filtered names.
	kept := ents[:0]
	for _, e := range ents {
		if e.Name != "." && e.Name != ".." && st.opts.Exclude != nil && st.opts.Exclude(e.Name) {
			continue
		}
		kept = append(kept, e)
	}
	data := encodeDirEnts(kept)
	inode := st.inodes[ino]
	di := toDumpInode(&inode)
	di.Size = uint64(len(data))
	return writeBlob(w, dumpfmt.TSInode, uint32(ino), di, data)
}

// writeBlob emits fully present (hole-free) data under one or more
// headers.
func writeBlob(w *dumpfmt.Writer, typ int32, ino uint32, di dumpfmt.DumpInode, data []byte) error {
	nseg := (len(data) + dumpfmt.TPBSize - 1) / dumpfmt.TPBSize
	if nseg == 0 {
		nseg = 1
	}
	first := true
	for seg := 0; seg < nseg; {
		chunk := nseg - seg
		if chunk > dumpfmt.MaxSegsPerHeader {
			chunk = dumpfmt.MaxSegsPerHeader
		}
		addrs := make([]byte, chunk)
		for i := range addrs {
			addrs[i] = 1
		}
		t := typ
		if !first {
			t = dumpfmt.TSAddr
		}
		h := &dumpfmt.Header{Type: t, Inumber: ino, Dinode: di, Count: int32(chunk), Addrs: addrs}
		if err := w.WriteHeader(h); err != nil {
			return err
		}
		for i := 0; i < chunk; i++ {
			off := (seg + i) * dumpfmt.TPBSize
			endOff := off + dumpfmt.TPBSize
			if endOff > len(data) {
				endOff = len(data)
			}
			var s []byte
			if off < len(data) {
				s = data[off:endOff]
			}
			if err := w.WriteSegment(s); err != nil {
				return err
			}
		}
		seg += chunk
		first = false
	}
	return nil
}

// dumpFile writes one regular file or symlink with its hole map,
// driving the dump engine's own read-ahead.
func (st *dumpState) dumpFile(ctx context.Context, w *dumpfmt.Writer, ino wafl.Inum) error {
	inode := st.inodes[ino]
	di := toDumpInode(&inode)
	totalSegs := int((inode.Size + dumpfmt.TPBSize - 1) / dumpfmt.TPBSize)
	if totalSegs == 0 {
		h := &dumpfmt.Header{Type: dumpfmt.TSInode, Inumber: uint32(ino), Dinode: di}
		return w.WriteHeader(h)
	}
	segsPerBlock := wafl.BlockSize / dumpfmt.TPBSize
	prefetch := st.opts.ReadAhead > 0

	chunkBuf := *st.chunkBuf
	seg := 0
	first := true
	for seg < totalSegs {
		if err := ctx.Err(); err != nil {
			return err
		}
		chunk := totalSegs - seg
		if chunk > dumpfmt.MaxSegsPerHeader {
			chunk = dumpfmt.MaxSegsPerHeader
		}
		// Build the hole map for this chunk from the block tree.
		addrs := make([]byte, chunk)
		for i := 0; i < chunk; i++ {
			fbn := uint32((seg + i) / segsPerBlock)
			pbn, err := st.view.BlockAt(ctx, ino, fbn)
			if err != nil {
				return err
			}
			if pbn != 0 {
				addrs[i] = 1
			}
		}
		// Stage the chunk's present blocks into chunkBuf BEFORE the
		// header goes out — segment i of the chunk lives at
		// chunkBuf[i*TPBSize:]. Contiguous runs of present blocks are
		// pulled in with one bulk ReadAt each (chunks are block-aligned:
		// MaxSegsPerHeader is a multiple of segsPerBlock), with the dump
		// engine's own read-ahead running W blocks in front. A run that
		// fails is salvaged block by block; blocks that stay unreadable
		// are demoted to holes in addrs, so the header's map and the
		// segments that follow it always agree.
		for i := 0; i < chunk; {
			if addrs[i] == 0 {
				i++
				continue
			}
			sIdx := seg + i
			fbn0 := sIdx / segsPerBlock
			// Extend the run while the next block is present and in
			// this chunk.
			nb := 1
			for nb < runBlocks {
				next := (fbn0+nb)*segsPerBlock - seg
				if next >= chunk || addrs[next] == 0 {
					break
				}
				nb++
			}
			if prefetch {
				st.consumed += int64(nb)
				st.pumpReadAhead(ctx)
			}
			dst := chunkBuf[i*dumpfmt.TPBSize : i*dumpfmt.TPBSize+nb*wafl.BlockSize]
			if _, err := st.view.ReadAt(ctx, ino, uint64(fbn0)*wafl.BlockSize, dst); err != nil {
				if err := st.salvageRun(ctx, ino, fbn0, nb, seg, chunk, addrs, chunkBuf); err != nil {
					return err
				}
			}
			i = (fbn0+nb)*segsPerBlock - seg
			if i > chunk {
				i = chunk
			}
		}
		t := int32(dumpfmt.TSInode)
		if !first {
			t = dumpfmt.TSAddr
		}
		h := &dumpfmt.Header{Type: t, Inumber: uint32(ino), Dinode: di, Count: int32(chunk), Addrs: addrs}
		if err := w.WriteHeader(h); err != nil {
			return err
		}
		for i := 0; i < chunk; i++ {
			if addrs[i] == 0 {
				continue
			}
			sIdx := seg + i
			so := i * dumpfmt.TPBSize
			endOff := so + dumpfmt.TPBSize
			if rem := inode.Size - uint64(sIdx)*dumpfmt.TPBSize; rem < dumpfmt.TPBSize {
				endOff = so + int(rem)
			}
			if err := w.WriteSegment(chunkBuf[so:endOff]); err != nil {
				return err
			}
		}
		seg += chunk
		first = false
	}
	return nil
}

// salvageRun recovers a failed bulk run one block at a time. A block
// the storage stack cannot produce even with retries and RAID
// reconstruction is logged, recorded in the damage report, and
// demoted to a hole in addrs — the dump continues, per the paper's
// observation that logical backup degrades per-file rather than
// per-volume. Cancellation is not damage: it aborts the dump.
func (st *dumpState) salvageRun(ctx context.Context, ino wafl.Inum, fbn0, nb, seg, chunk int, addrs []byte, chunkBuf []byte) error {
	segsPerBlock := wafl.BlockSize / dumpfmt.TPBSize
	for b := 0; b < nb; b++ {
		fbn := fbn0 + b
		si := fbn*segsPerBlock - seg // chunk-relative first segment of the block
		dst := chunkBuf[si*dumpfmt.TPBSize : si*dumpfmt.TPBSize+wafl.BlockSize]
		_, err := st.view.ReadAt(ctx, ino, uint64(fbn)*wafl.BlockSize, dst)
		if err == nil {
			continue
		}
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		for k := 0; k < segsPerBlock; k++ {
			if si+k < chunk {
				addrs[si+k] = 0
			}
		}
		st.stats.Damaged = append(st.stats.Damaged, DamagedBlock{Ino: ino, Fbn: uint32(fbn), Err: err.Error()})
		st.logf("ino %d fbn %d unreadable, hole-mapped: %v", ino, fbn, err)
	}
	return nil
}

// pumpReadAhead advances the lookahead cursor until ReadAhead blocks
// are in flight beyond the blocks already consumed. Unlike a per-file
// policy, the cursor crosses file boundaries: the next file's blocks
// start arriving while the current file is still being written to
// tape, hiding the per-file first-block seek.
func (st *dumpState) pumpReadAhead(ctx context.Context) {
	for st.issued < st.consumed+int64(st.opts.ReadAhead) && st.laFile < len(st.fileList) {
		if ctx.Err() != nil {
			return
		}
		ino := st.fileList[st.laFile]
		inode := st.inodes[ino]
		if st.laFbn >= inode.Blocks() {
			st.laFile++
			st.laFbn = 0
			continue
		}
		pbn, err := st.view.BlockAt(ctx, ino, st.laFbn)
		st.laFbn++
		st.issued++ // holes count: the tape cursor skips them too
		if err != nil || pbn <= 1 {
			continue
		}
		st.view.PrefetchBlock(ctx, pbn)
	}
}

func toDumpInode(ino *wafl.Inode) dumpfmt.DumpInode {
	return dumpfmt.DumpInode{
		Mode:  ino.Mode,
		Nlink: ino.Nlink,
		UID:   ino.UID,
		GID:   ino.GID,
		Size:  ino.Size,
		Atime: ino.Atime,
		Mtime: ino.Mtime,
		XMode: ino.XMode,
	}
}
