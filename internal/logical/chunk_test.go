package logical

import (
	"testing"

	"repro/internal/chunk"
	"repro/internal/workload"
)

// chunkIndex is a minimal in-memory chunk.Index (the catalog plays
// this role in production, but catalog imports the engines, so engine
// tests bring their own).
type chunkIndex map[chunk.Hash]chunk.Entry

func (ix chunkIndex) LookupChunk(h chunk.Hash) (chunk.Entry, bool) {
	e, ok := ix[h]
	return e, ok
}

func (ix chunkIndex) CommitChunks(es []chunk.Entry) error {
	for _, e := range es {
		ix[e.Hash] = e
	}
	return nil
}

// TestDumpRestoreThroughChunkLayer runs the logical engine's stream
// through the content-defined dedup layer instead of a raw drive: the
// chunk.Writer sits where DriveSink would, the chunk.Reader where
// DriveSource would. A second full of the same snapshot must dedup
// nearly completely (hits skip media writes), and both manifests must
// restore byte-identical trees.
func TestDumpRestoreThroughChunkLayer(t *testing.T) {
	src := newFS(t, 16384)
	if _, err := workload.Generate(ctx, src, workload.DefaultSpec()); err != nil {
		t.Fatal(err)
	}
	if err := src.CreateSnapshot(ctx, "s"); err != nil {
		t.Fatal(err)
	}
	sv, _ := src.SnapshotView("s")

	ix := chunkIndex{}
	media := chunk.NewMemMedia("t0")

	dumpOnce := func() (*DumpStats, chunk.Manifest, chunk.WriterStats) {
		w, err := chunk.NewWriter(chunk.WriterOptions{Index: ix, Media: media, Engine: "logical"})
		if err != nil {
			t.Fatal(err)
		}
		stats, err := Dump(ctx, DumpOptions{
			View: sv, Level: 0, FSID: "test",
			Sink: w, Label: "test", ReadAhead: 8,
		})
		if err != nil {
			t.Fatalf("dump: %v", err)
		}
		m, err := w.Close()
		if err != nil {
			t.Fatal(err)
		}
		return stats, m, w.Stats()
	}

	stats1, m1, _ := dumpOnce()
	if stats1.FilesDumped == 0 {
		t.Fatal("empty dump")
	}

	// Second full of the unchanged snapshot: nearly every chunk hits.
	before := media.StoredBytes()
	_, m2, ws2 := dumpOnce()
	added := media.StoredBytes() - before
	if ws2.Hits == 0 || added*3 > m2.RawBytes {
		t.Fatalf("repeat full added %d of %d raw bytes (%d hits); dedup broken",
			added, m2.RawBytes, ws2.Hits)
	}

	want := digests(t, sv, "/")
	for _, m := range []chunk.Manifest{m1, m2} {
		dst := newFS(t, 16384)
		if _, err := Restore(ctx, RestoreOptions{
			FS: dst, Source: chunk.NewReader(ix, media, m),
			KernelIntegrated: true,
		}); err != nil {
			t.Fatalf("restore through chunk layer: %v", err)
		}
		assertTreesEqual(t, want, digests(t, dst.ActiveView(), "/"))
		if err := dst.MustCheck(ctx); err != nil {
			t.Fatal(err)
		}
	}
}
