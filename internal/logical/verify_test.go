package logical

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestVerifyCleanDump(t *testing.T) {
	src := newFS(t, 8192)
	workload.Generate(ctx, src, workload.Spec{Seed: 31, Files: 40, DirFanout: 6, MeanFileSize: 8 << 10, Symlinks: 2, Hardlinks: 2})
	src.CreateSnapshot(ctx, "s")
	sv, _ := src.SnapshotView("s")
	drive := newTape(t, 0, 1)
	stats := dumpToTape(t, sv, drive, 0, nil)

	drive.Rewind(nil)
	res, err := Verify(ctx, VerifyOptions{View: sv, Source: NewDriveSource(drive, nil, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Problems) != 0 {
		t.Fatalf("clean dump reported problems: %v", res.Problems[:min(3, len(res.Problems))])
	}
	if res.FilesChecked != stats.FilesDumped {
		t.Fatalf("checked %d files, dump wrote %d", res.FilesChecked, stats.FilesDumped)
	}
	if res.DirsChecked == 0 || res.BytesRead == 0 {
		t.Fatalf("suspicious verify stats: %+v", res)
	}
}

func TestVerifyDetectsPostDumpChanges(t *testing.T) {
	src := newFS(t, 8192)
	src.WriteFile(ctx, "/a.txt", []byte("original contents"), 0644)
	src.WriteFile(ctx, "/b.txt", []byte("stays the same"), 0644)
	src.WriteFile(ctx, "/doomed.txt", []byte("going away"), 0644)
	src.CreateSnapshot(ctx, "s")
	sv, _ := src.SnapshotView("s")
	drive := newTape(t, 0, 1)
	dumpToTape(t, sv, drive, 0, nil)

	// Verify against the *active* view after mutations: every change
	// must surface as a distinct problem.
	src.WriteFile(ctx, "/a.txt", []byte("tampered contents!"), 0644)
	src.RemovePath(ctx, "/doomed.txt")
	src.WriteFile(ctx, "/new.txt", []byte("added after dump"), 0644)

	drive.Rewind(nil)
	res, err := Verify(ctx, VerifyOptions{View: src.ActiveView(), Source: NewDriveSource(drive, nil, 0)})
	if err != nil {
		t.Fatal(err)
	}
	wantSubstrings := []string{"a.txt", "doomed.txt", "new.txt"}
	for _, want := range wantSubstrings {
		found := false
		for _, p := range res.Problems {
			if strings.Contains(p, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no problem mentions %q (got %v)", want, res.Problems)
		}
	}
}

func TestVerifyDetectsTapeCorruption(t *testing.T) {
	src := newFS(t, 8192)
	workload.Generate(ctx, src, workload.Spec{Seed: 32, Files: 20, DirFanout: 5, MeanFileSize: 8 << 10})
	src.CreateSnapshot(ctx, "s")
	sv, _ := src.SnapshotView("s")
	drive := newTape(t, 0, 1)
	dumpToTape(t, sv, drive, 0, nil)

	cart := drive.Loaded()
	if !cart.CorruptRecord(cart.Records() * 3 / 4) {
		t.Fatal("nothing to corrupt")
	}
	drive.Rewind(nil)
	res, err := Verify(ctx, VerifyOptions{View: sv, Source: NewDriveSource(drive, nil, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Problems) == 0 && res.SkippedUnits == 0 {
		t.Fatal("corrupted tape verified clean")
	}
}

func TestVerifySubtree(t *testing.T) {
	src := newFS(t, 4096)
	src.WriteFile(ctx, "/proj/keep.txt", []byte("x"), 0644)
	src.WriteFile(ctx, "/other/out.txt", []byte("y"), 0644)
	src.CreateSnapshot(ctx, "s")
	sv, _ := src.SnapshotView("s")
	drive := newTape(t, 0, 1)
	dumpToTape(t, sv, drive, 0, nil, func(o *DumpOptions) { o.Subtree = "/proj" })
	drive.Rewind(nil)
	res, err := Verify(ctx, VerifyOptions{View: sv, Source: NewDriveSource(drive, nil, 0), Subtree: "/proj"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Problems) != 0 {
		t.Fatalf("subtree verify: %v", res.Problems)
	}
	if res.FilesChecked != 1 {
		t.Fatalf("FilesChecked = %d, want 1", res.FilesChecked)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
