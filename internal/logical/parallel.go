package logical

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/bufpool"
	"repro/internal/dumpfmt"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/internal/wafl"
)

// The parallel logical dump: Phases I-III run once on the calling
// process, then each drive gets its own shard pipeline — N chunk
// readers pulling Phase IV file chunks off a precomputed plan, one
// writer reassembling them in plan order behind the full maps and the
// shared directory records. The plan fixes every header boundary
// before any file I/O starts, so the bytes each shard writes are
// identical to a caller-driven Shard/Shards dump of the same slice —
// parallelism changes only the clock.

// viewGate serializes filesystem-view access across parallel Phase IV
// readers in untimed mode: the wafl block cache is not thread-safe.
// On the simulator the cooperative scheduler already serializes
// stages, so the gate is a no-op there (a real mutex must never be
// held across a simulated wait).
type viewGate struct {
	mu   sync.Mutex
	real bool
}

func (g *viewGate) lock() {
	if g.real {
		g.mu.Lock()
	}
}

func (g *viewGate) unlock() {
	if g.real {
		g.mu.Unlock()
	}
}

// shardPrep is the Phase I-III product shared read-only by every
// shard: the dump state's maps, the encoded directory records, and the
// gates serializing view access and operator callbacks.
type shardPrep struct {
	st       *dumpState
	clri     *dumpfmt.InoMap
	dirInos  []wafl.Inum
	dirBlobs map[wafl.Inum][]byte
	gate     *viewGate
	cbMu     sync.Mutex
}

// callback runs an operator callback (Log, FileIndex), serialized
// across shard writers when they are real goroutines.
func (p *shardPrep) callback(f func()) {
	if p.gate.real {
		p.cbMu.Lock()
		defer p.cbMu.Unlock()
	}
	f()
}

// fileJob is one planned Phase IV chunk: up to MaxSegsPerHeader
// segments of one file, block-aligned exactly like the sequential
// engine's chunks so the stream bytes match it byte for byte.
type fileJob struct {
	ino        wafl.Inum
	seg, nsegs int
	first      bool // first chunk of its file: TSInode header + FileIndex
	last       bool // last chunk of its file: checkpoint accounting
}

// planFiles expands a shard's file slice into its chunk-job plan.
func planFiles(st *dumpState, files []wafl.Inum) []fileJob {
	var plan []fileJob
	for _, ino := range files {
		inode := st.inodes[ino]
		totalSegs := int((inode.Size + dumpfmt.TPBSize - 1) / dumpfmt.TPBSize)
		if totalSegs == 0 {
			plan = append(plan, fileJob{ino: ino, first: true, last: true})
			continue
		}
		for seg := 0; seg < totalSegs; {
			n := totalSegs - seg
			if n > dumpfmt.MaxSegsPerHeader {
				n = dumpfmt.MaxSegsPerHeader
			}
			plan = append(plan, fileJob{
				ino: ino, seg: seg, nsegs: n,
				first: seg == 0, last: seg+n >= totalSegs,
			})
			seg += n
		}
	}
	return plan
}

// chunkRes is one staged chunk moving from a reader to the writer.
type chunkRes struct {
	seq     int
	addrs   []byte  // hole map, after salvage demotion
	buf     *[]byte // pooled segment data; nil for an empty file
	damaged []DamagedBlock
}

// shardPump is one shard's cross-file read-ahead cursor, walking the
// shard's own (file, block) sequence in front of its readers.
type shardPump struct {
	files    []wafl.Inum
	laFile   int
	laFbn    uint32
	issued   int64
	consumed int64
}

// pumpShard advances the lookahead cursor until ReadAhead blocks are
// in flight beyond the blocks the shard's readers have consumed.
// Callers hold the view gate.
func pumpShard(ctx context.Context, st *dumpState, pump *shardPump) {
	for pump.issued < pump.consumed+int64(st.opts.ReadAhead) && pump.laFile < len(pump.files) {
		if ctx.Err() != nil {
			return
		}
		ino := pump.files[pump.laFile]
		inode := st.inodes[ino]
		if pump.laFbn >= inode.Blocks() {
			pump.laFile++
			pump.laFbn = 0
			continue
		}
		pbn, err := st.view.BlockAt(ctx, ino, pump.laFbn)
		pump.laFbn++
		pump.issued++ // holes count: the tape cursor skips them too
		if err != nil || pbn <= 1 {
			continue
		}
		st.view.PrefetchBlock(ctx, pbn)
	}
}

// stageChunk reads one chunk's hole map and present blocks into a
// pooled buffer, salvaging failed runs block by block: blocks that
// stay unreadable are demoted to holes in addrs and recorded in the
// result's damage list (the writer folds them into the stream-order
// report). Mirrors dumpFile's staging loop exactly.
func stageChunk(ctx context.Context, st *dumpState, gate *viewGate, pump *shardPump, seq int, j fileJob) (chunkRes, error) {
	res := chunkRes{seq: seq}
	if j.nsegs == 0 {
		return res, nil
	}
	segsPerBlock := wafl.BlockSize / dumpfmt.TPBSize
	prefetch := st.opts.ReadAhead > 0
	res.buf = bufpool.Get(dumpfmt.MaxSegsPerHeader * dumpfmt.TPBSize)
	chunkBuf := *res.buf
	addrs := make([]byte, j.nsegs)
	fail := func(err error) (chunkRes, error) {
		bufpool.Put(res.buf)
		res.buf = nil
		return res, err
	}
	gate.lock()
	defer gate.unlock()
	for i := 0; i < j.nsegs; i++ {
		fbn := uint32((j.seg + i) / segsPerBlock)
		pbn, err := st.view.BlockAt(ctx, j.ino, fbn)
		if err != nil {
			return fail(err)
		}
		if pbn != 0 {
			addrs[i] = 1
		}
	}
	for i := 0; i < j.nsegs; {
		if addrs[i] == 0 {
			i++
			continue
		}
		sIdx := j.seg + i
		fbn0 := sIdx / segsPerBlock
		nb := 1
		for nb < runBlocks {
			next := (fbn0+nb)*segsPerBlock - j.seg
			if next >= j.nsegs || addrs[next] == 0 {
				break
			}
			nb++
		}
		if prefetch {
			pump.consumed += int64(nb)
			pumpShard(ctx, st, pump)
		}
		dst := chunkBuf[i*dumpfmt.TPBSize : i*dumpfmt.TPBSize+nb*wafl.BlockSize]
		if _, err := st.view.ReadAt(ctx, j.ino, uint64(fbn0)*wafl.BlockSize, dst); err != nil {
			// Salvage block by block; unreadable blocks demote to holes.
			// Cancellation is not damage: it aborts the shard.
			for b := 0; b < nb; b++ {
				fbn := fbn0 + b
				si := fbn*segsPerBlock - j.seg
				d := chunkBuf[si*dumpfmt.TPBSize : si*dumpfmt.TPBSize+wafl.BlockSize]
				_, rerr := st.view.ReadAt(ctx, j.ino, uint64(fbn)*wafl.BlockSize, d)
				if rerr == nil {
					continue
				}
				if cerr := ctx.Err(); cerr != nil {
					return fail(cerr)
				}
				for k := 0; k < segsPerBlock; k++ {
					if si+k < j.nsegs {
						addrs[si+k] = 0
					}
				}
				res.damaged = append(res.damaged, DamagedBlock{Ino: j.ino, Fbn: uint32(fbn), Err: rerr.Error()})
			}
		}
		i = (fbn0+nb)*segsPerBlock - j.seg
		if i > j.nsegs {
			i = j.nsegs
		}
	}
	res.addrs = addrs
	return res, nil
}

// shardChunkReader pulls chunk jobs off the shared plan by atomic
// counter, stages each, and hands it to the writer queue.
func shardChunkReader(ctx context.Context, st *dumpState, gate *viewGate, pump *shardPump, plan []fileJob, next *atomic.Int64, out *pipeline.Queue[chunkRes]) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		seq := int(next.Add(1)) - 1
		if seq >= len(plan) {
			return nil
		}
		res, err := stageChunk(ctx, st, gate, pump, seq, plan[seq])
		if err != nil {
			return err
		}
		if err := out.Put(ctx, res); err != nil {
			if res.buf != nil {
				bufpool.Put(res.buf)
			}
			return err
		}
	}
}

// writerState is the shard writer's progress, read by dumpLogicalShard
// after the pipeline joins (single writer, so no locking).
type writerState struct {
	filesDumped int
	bytes       int64
	ckptIno     wafl.Inum
	damaged     []DamagedBlock
}

// emitChunk writes one reassembled chunk: TSInode/TSAddr header, then
// the present segments with the last segment trimmed to the file size.
func emitChunk(st *dumpState, w *dumpfmt.Writer, j fileJob, res chunkRes) error {
	inode := st.inodes[j.ino]
	di := toDumpInode(&inode)
	if j.nsegs == 0 {
		return w.WriteHeader(&dumpfmt.Header{Type: dumpfmt.TSInode, Inumber: uint32(j.ino), Dinode: di})
	}
	t := int32(dumpfmt.TSInode)
	if !j.first {
		t = dumpfmt.TSAddr
	}
	h := &dumpfmt.Header{Type: t, Inumber: uint32(j.ino), Dinode: di, Count: int32(j.nsegs), Addrs: res.addrs}
	if err := w.WriteHeader(h); err != nil {
		return err
	}
	chunkBuf := *res.buf
	for i := 0; i < j.nsegs; i++ {
		if res.addrs[i] == 0 {
			continue
		}
		sIdx := j.seg + i
		so := i * dumpfmt.TPBSize
		endOff := so + dumpfmt.TPBSize
		if rem := inode.Size - uint64(sIdx)*dumpfmt.TPBSize; rem < dumpfmt.TPBSize {
			endOff = so + int(rem)
		}
		if err := w.WriteSegment(chunkBuf[so:endOff]); err != nil {
			return err
		}
	}
	return nil
}

// shardStreamWriter writes one shard's complete stream: label header,
// full maps, every directory (replayed from the shared blobs), then
// the Phase IV chunks reassembled in plan order from the reader queue,
// checkpointing after every CheckpointEvery completed files.
func shardStreamWriter(ctx context.Context, prep *shardPrep, sink dumpfmt.Sink, plan []fileJob, out *pipeline.Queue[chunkRes], ws *writerState) error {
	st := prep.st
	opts := &st.opts
	defer pipeline.BindStageProc(ctx, sink)()

	w, err := dumpfmt.NewWriter(sink, opts.Label, st.date, st.ddate, int32(opts.Level))
	if err != nil {
		return err
	}
	// Full maps on every stream: restore tolerates TS_BITS naming
	// files that arrive on sibling streams.
	if err := writeMap(w, dumpfmt.TSClri, prep.clri, uint32(st.rootIno)); err != nil {
		return err
	}
	if err := writeMap(w, dumpfmt.TSBits, st.dump, uint32(st.rootIno)); err != nil {
		return err
	}
	// Phase III: every stream carries all directories, so each is
	// self-contained enough for restore to map names on its own.
	for _, ino := range prep.dirInos {
		if err := ctx.Err(); err != nil {
			return err
		}
		data := prep.dirBlobs[ino]
		inode := st.inodes[ino]
		di := toDumpInode(&inode)
		di.Size = uint64(len(data))
		if err := writeBlob(w, dumpfmt.TSInode, uint32(ino), di, data); err != nil {
			return err
		}
	}

	// Phase IV: drain the queue, reassembling plan order (readers
	// finish out of order; pending chunks are bounded by the reader
	// count plus the queue).
	pending := make(map[int]chunkRes)
	defer func() {
		for _, r := range pending {
			if r.buf != nil {
				bufpool.Put(r.buf)
			}
		}
	}()
	sinceCkpt := 0
	for emitted := 0; emitted < len(plan); {
		res, ready := pending[emitted]
		if !ready {
			c, ok, err := out.Get(ctx)
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("logical: chunk stream ended at %d of %d", emitted, len(plan))
			}
			pending[c.seq] = c
			continue
		}
		delete(pending, emitted)
		j := plan[emitted]
		if j.first && opts.FileIndex != nil {
			unit := w.Tapea()
			prep.callback(func() { opts.FileIndex(st.path(j.ino), j.ino, unit) })
		}
		err := emitChunk(st, w, j, res)
		if res.buf != nil {
			bufpool.Put(res.buf)
		}
		if err != nil {
			return err
		}
		// Damage reports fold in here, in stream order, so the report
		// is deterministic for any reader count.
		for _, d := range res.damaged {
			ws.damaged = append(ws.damaged, d)
			if opts.Log != nil {
				d := d
				prep.callback(func() {
					st.logf("ino %d fbn %d unreadable, hole-mapped: %s", d.Ino, d.Fbn, d.Err)
				})
			}
		}
		if j.last {
			ws.filesDumped++
			sinceCkpt++
			if opts.CheckpointEvery > 0 && sinceCkpt >= opts.CheckpointEvery {
				if err := w.Checkpoint(uint32(j.ino)); err != nil {
					return err
				}
				// A sink that accepts records provisionally must confirm
				// durability before the checkpoint may vouch for them.
				if sy, ok := sink.(dumpfmt.Syncer); ok {
					if err := sy.Sync(); err != nil {
						return err
					}
				}
				ws.ckptIno = j.ino
				sinceCkpt = 0
			}
		}
		emitted++
	}
	if err := w.Close(); err != nil {
		return err
	}
	ws.bytes = w.Written()
	return nil
}

// dumpLogicalShard runs one shard's pipeline to completion. The error
// (with resume checkpoint) stays in the ShardResult so sibling shards
// are unaffected.
func dumpLogicalShard(ctx context.Context, prep *shardPrep, sink dumpfmt.Sink, files []wafl.Inum, ckShard, ckShards int, resume *Checkpoint) ShardResult {
	st := prep.st
	opts := &st.opts
	res := ShardResult{Shard: ckShard}

	ckptIno := wafl.Inum(0)
	if resume != nil {
		ckptIno = resume.LastIno
	}
	if ckptIno > 0 {
		skip := sort.Search(len(files), func(i int) bool { return files[i] > ckptIno })
		res.FilesSkipped = skip
		files = files[skip:]
	}
	plan := planFiles(st, files)

	readers := opts.Readers
	if readers < 1 {
		readers = 1
	}
	if readers > len(plan) && len(plan) > 0 {
		readers = len(plan)
	}

	pump := &shardPump{files: files}
	pl := pipeline.New(ctx)
	out := pipeline.NewQueue[chunkRes](pl, fmt.Sprintf("logical.shard%d", ckShard), 2*readers+2)
	var next atomic.Int64
	var live atomic.Int64
	live.Store(int64(readers))
	for r := 0; r < readers; r++ {
		pl.Go(fmt.Sprintf("logical.shard%d.reader%d", ckShard, r), func(ctx context.Context) error {
			err := shardChunkReader(ctx, st, prep.gate, pump, plan, &next, out)
			if live.Add(-1) == 0 {
				out.CloseSend() // last reader out ends the stream
			}
			return err
		})
	}
	ws := &writerState{ckptIno: ckptIno}
	pl.Go(fmt.Sprintf("logical.shard%d.writer", ckShard), func(ctx context.Context) error {
		return shardStreamWriter(ctx, prep, sink, plan, out, ws)
	})
	err := pl.Wait()
	res.FilesDumped = ws.filesDumped
	res.Damaged = ws.damaged
	if err != nil {
		res.Err = err
		if opts.CheckpointEvery > 0 || resume != nil {
			res.Checkpoint = &Checkpoint{
				Date: st.date, Level: opts.Level, LastIno: ws.ckptIno,
				Shard: ckShard, Shards: ckShards,
			}
		}
		return res
	}
	res.BytesWritten = ws.bytes
	return res
}

// dumpParallel is the Sinks-mode Phase III/IV driver: directories are
// read and encoded once, then each sink's shard rides its own pipeline
// and a plain group joins them — one drive's failure leaves the
// sibling shards streaming to completion.
func (st *dumpState) dumpParallel(ctx context.Context, clri *dumpfmt.InoMap, dirInos, fileInos []wafl.Inum, begin func(string), end func()) (*DumpStats, error) {
	opts := &st.opts
	nShards := len(opts.Sinks)

	stats := &DumpStats{Date: st.date, BaseDate: st.ddate, InodesMapped: st.used.Count()}
	st.stats = stats

	// Phase III prep: read and encode every directory once, so only
	// Phase IV touches the filesystem concurrently.
	begin("Dumping directories")
	prep := &shardPrep{
		st: st, clri: clri, dirInos: dirInos,
		dirBlobs: make(map[wafl.Inum][]byte, len(dirInos)),
		gate:     &viewGate{real: sim.ProcFrom(ctx) == nil},
	}
	for _, ino := range dirInos {
		if err := ctx.Err(); err != nil {
			end()
			return stats, err
		}
		ents, err := st.view.Readdir(ctx, ino)
		if err != nil {
			end()
			return stats, err
		}
		kept := ents[:0]
		for _, e := range ents {
			if e.Name != "." && e.Name != ".." && opts.Exclude != nil && opts.Exclude(e.Name) {
				continue
			}
			kept = append(kept, e)
		}
		prep.dirBlobs[ino] = encodeDirEnts(kept)
	}
	stats.DirsDumped = len(dirInos)
	end()

	// Phase IV: shard pipelines joined by a plain group; per-shard
	// errors stay in the results so siblings are unaffected.
	begin("Dumping files")
	results := make([]ShardResult, nShards)
	g := pipeline.NewGroup(ctx)
	for k := 0; k < nShards; k++ {
		k := k
		lo := len(fileInos) * k / nShards
		hi := len(fileInos) * (k + 1) / nShards
		var resume *Checkpoint
		if opts.ResumeShards != nil {
			resume = opts.ResumeShards[k]
		}
		g.Go(fmt.Sprintf("logical.shard%d", k), func(ctx context.Context) error {
			results[k] = dumpLogicalShard(ctx, prep, opts.Sinks[k], fileInos[lo:hi], k, nShards, resume)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		end()
		return stats, err
	}
	end()

	stats.ShardResults = results
	var errs []error
	for k := range results {
		r := &results[k]
		stats.FilesDumped += r.FilesDumped
		stats.FilesSkipped += r.FilesSkipped
		stats.BytesWritten += r.BytesWritten
		stats.Damaged = append(stats.Damaged, r.Damaged...)
		if r.Err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", r.Shard, r.Err))
		}
	}
	if len(errs) > 0 {
		return stats, errors.Join(errs...)
	}
	if opts.Dates != nil {
		opts.Dates.Record(opts.FSID, opts.Level, st.date)
	}
	m := obs.MetricsFrom(ctx)
	l := obs.Labels{"fsid": opts.FSID}
	m.Counter("logical_dump_files_total", l).Add(int64(stats.FilesDumped))
	m.Counter("logical_dump_dirs_total", l).Add(int64(stats.DirsDumped))
	m.Counter("logical_dump_bytes_total", l).Add(stats.BytesWritten)
	m.Counter("logical_dump_damaged_blocks_total", l).Add(int64(len(stats.Damaged)))
	return stats, nil
}
