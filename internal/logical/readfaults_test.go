package logical

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"

	"repro/internal/tape"
	"repro/internal/workload"
)

// TestDriveSourceRetriesAndSkips drives the source's whole read-fault
// policy at the record level: a transient error is retried in place, a
// persistent one is latched and — in SkipDamaged mode — spaced past.
func TestDriveSourceRetriesAndSkips(t *testing.T) {
	drive := newTape(t, 0, 1)
	var want [][]byte
	for i := 0; i < 6; i++ {
		rec := bytes.Repeat([]byte{byte('a' + i)}, 16)
		want = append(want, rec)
		if err := drive.WriteRecord(nil, rec); err != nil {
			t.Fatal(err)
		}
	}
	drive.Rewind(nil)
	drive.FailNextRead(true) // record 0: transient, must be retried

	src := NewDriveSource(drive, nil, 1)
	src.SkipDamaged = true
	first, err := src.ReadRecord()
	if err != nil || !bytes.Equal(first, want[0]) {
		t.Fatalf("first read got %q / %v, want the retried record", first, err)
	}
	drive.FailNextRead(false) // record 1: latched bad spot, must be skipped
	got := [][]byte{first}
	for {
		rec, err := src.ReadRecord()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, rec)
	}
	wantAfter := append([][]byte{want[0]}, want[2:]...)
	if len(got) != len(wantAfter) {
		t.Fatalf("read %d records, want %d", len(got), len(wantAfter))
	}
	for i := range got {
		if !bytes.Equal(got[i], wantAfter[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	retries, skipped := src.ReadStats()
	if retries != 1 || skipped != 1 {
		t.Fatalf("read stats: %d retries, %d skipped; want 1, 1", retries, skipped)
	}
	if drive.Loaded().BadRecords() != 1 {
		t.Fatalf("bad records = %d, want 1", drive.Loaded().BadRecords())
	}
}

// TestDriveSourceExhaustsRetryBudget: a transient error that outlives
// the bounded retry budget surfaces instead of looping forever.
func TestDriveSourceExhaustsRetryBudget(t *testing.T) {
	drive := newTape(t, 0, 1)
	if err := drive.WriteRecord(nil, []byte("only")); err != nil {
		t.Fatal(err)
	}
	drive.Rewind(nil)
	// More transient faults than DefaultRetryPolicy's 4 retries allow.
	for i := 0; i < 8; i++ {
		drive.FailNextRead(true)
	}
	src := NewDriveSource(drive, nil, 1)
	if _, err := src.ReadRecord(); !tape.IsTransientMedia(err) {
		t.Fatalf("want the unhealed transient error to surface, got %v", err)
	}
}

// TestVerifyRetriesTransientReads: Verify runs over the same
// retry-with-backoff read path the restore uses, so a tape that reads
// marginally still verifies clean.
func TestVerifyRetriesTransientReads(t *testing.T) {
	src := newFS(t, 8192)
	workload.Generate(ctx, src, workload.Spec{Seed: 41, Files: 12, DirFanout: 4, MeanFileSize: 8 << 10})
	src.CreateSnapshot(ctx, "s")
	sv, _ := src.SnapshotView("s")
	drive := newTape(t, 0, 1)
	if _, err := Dump(ctx, DumpOptions{View: sv, Sink: &DriveSink{Drive: drive}, Label: "vr"}); err != nil {
		t.Fatal(err)
	}
	drive.Flush(nil)
	drive.Rewind(nil)
	// Every read error transient: the drive recovers each on one retry.
	drive.InjectFaults(tape.FaultConfig{Seed: 42, ReadFault: 0.1, ReadTransient: 1})
	tsrc := NewDriveSource(drive, nil, 1)
	res, err := Verify(ctx, VerifyOptions{View: sv, Source: tsrc})
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if len(res.Problems) != 0 {
		t.Fatalf("verify found problems on a clean dump: %v", res.Problems)
	}
	if retries, _ := tsrc.ReadStats(); retries == 0 {
		t.Fatal("no transient faults fired; lower the seed's luck or raise ReadFault")
	}
}

// TestRestoreSurvivesTransientReadFaults: the full dump→restore cycle
// over a drive with probabilistic transient read faults is
// byte-identical — the retry policy absorbs every marginal read.
func TestRestoreSurvivesTransientReadFaults(t *testing.T) {
	src := newFS(t, 8192)
	workload.Generate(ctx, src, workload.Spec{Seed: 43, Files: 15, DirFanout: 4, MeanFileSize: 12 << 10})
	src.CreateSnapshot(ctx, "s")
	sv, _ := src.SnapshotView("s")
	drive := newTape(t, 0, 1)
	if _, err := Dump(ctx, DumpOptions{View: sv, Sink: &DriveSink{Drive: drive}, Label: "rr"}); err != nil {
		t.Fatal(err)
	}
	drive.Flush(nil)
	drive.InjectFaults(tape.FaultConfig{Seed: 44, ReadFault: 0.15, ReadTransient: 1})
	dst := newFS(t, 8192)
	rsrc := NewDriveSource(drive, nil, 0)
	restoreFromTape(t, dst, drive, func(o *RestoreOptions) { o.Source = rsrc })
	assertTreesEqual(t, digests(t, sv, "/"), digests(t, dst.ActiveView(), "/"))
	if retries, _ := rsrc.ReadStats(); retries == 0 {
		t.Fatal("no transient faults fired during restore")
	}
}

// TestTapeRetryLoopsHonorCancel: both tape adapters bail out of their
// backoff loops when the context is canceled instead of sleeping out
// the budget.
func TestTapeRetryLoopsHonorCancel(t *testing.T) {
	canceled, cancel := context.WithCancel(ctx)
	cancel()

	drive := newTape(t, 0, 1)
	drive.FailNextWrite(true)
	sink := &DriveSink{Drive: drive, Ctx: canceled}
	if err := sink.WriteRecord([]byte("rec")); !errors.Is(err, context.Canceled) {
		t.Fatalf("sink returned %v, want context.Canceled", err)
	}

	if err := drive.WriteRecord(nil, []byte("rec")); err != nil {
		t.Fatal(err)
	}
	drive.Rewind(nil)
	drive.FailNextRead(true)
	src := NewDriveSource(drive, nil, 1)
	src.Ctx = canceled
	if _, err := src.ReadRecord(); !errors.Is(err, context.Canceled) {
		t.Fatalf("source returned %v, want context.Canceled", err)
	}
}
