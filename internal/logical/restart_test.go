package logical

import (
	"errors"
	"io"
	"testing"

	"repro/internal/dumpfmt"
	"repro/internal/nvram"
	"repro/internal/storage"
	"repro/internal/wafl"
	"repro/internal/workload"
)

// truncatedSource delivers only the first n records, then fails like a
// drive losing the tape mid-restore.
type truncatedSource struct {
	inner dumpfmt.Source
	left  int
}

var errTapeJam = errors.New("simulated tape jam")

func (s *truncatedSource) ReadRecord() ([]byte, error) {
	if s.left <= 0 {
		return nil, errTapeJam
	}
	s.left--
	rec, err := s.inner.ReadRecord()
	if err != nil {
		return nil, io.EOF
	}
	return rec, nil
}

// TestRestoreIsRestartable backs the paper's footnote 2: "it is simple
// to restart a restore which is interrupted by a crash". A restore
// that dies partway (tape jam, then filer crash and NVRAM replay) is
// simply re-run from the beginning and must converge to the exact
// source tree.
func TestRestoreIsRestartable(t *testing.T) {
	src := newFS(t, 8192)
	workload.Generate(ctx, src, workload.Spec{Seed: 55, Files: 40, DirFanout: 6, MeanFileSize: 8 << 10, Hardlinks: 2})
	src.CreateSnapshot(ctx, "s")
	sv, _ := src.SnapshotView("s")
	drive := newTape(t, 0, 1)
	dumpToTape(t, sv, drive, 0, nil)

	dev := storage.NewMemDevice(8192)
	log := nvram.New(nil, nvram.Params{Size: 4 << 20})
	dst, err := wafl.Mkfs(ctx, dev, log, wafl.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// First attempt: the tape jams partway through the file section.
	drive.Rewind(nil)
	jam := &truncatedSource{inner: NewDriveSource(drive, nil, 0), left: drive.Loaded().Records() / 2}
	_, err = Restore(ctx, RestoreOptions{FS: dst, Source: jam, KernelIntegrated: true})
	if err == nil {
		t.Fatal("interrupted restore reported success")
	}

	// The filer then crashes; NVRAM replays whatever the partial
	// restore had staged.
	dst.Crash()
	dst, err = wafl.Mount(ctx, dev, log, wafl.Options{})
	if err != nil {
		t.Fatalf("remount after crash mid-restore: %v", err)
	}
	if err := dst.MustCheck(ctx); err != nil {
		t.Fatalf("filesystem inconsistent after interrupted restore: %v", err)
	}

	// Second attempt: rewind and re-run the whole restore.
	drive.Rewind(nil)
	if _, err := Restore(ctx, RestoreOptions{
		FS: dst, Source: NewDriveSource(drive, nil, 0), KernelIntegrated: true,
	}); err != nil {
		t.Fatalf("restarted restore: %v", err)
	}
	assertTreesEqual(t, digests(t, sv, "/"), digests(t, dst.ActiveView(), "/"))
	if err := dst.MustCheck(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestRestoreRestartAtEveryCut runs the interruption at several points
// in the stream; the re-run must converge from any of them.
func TestRestoreRestartAtEveryCut(t *testing.T) {
	src := newFS(t, 4096)
	workload.Generate(ctx, src, workload.Spec{Seed: 56, Files: 15, DirFanout: 4, MeanFileSize: 4 << 10})
	src.CreateSnapshot(ctx, "s")
	sv, _ := src.SnapshotView("s")
	drive := newTape(t, 0, 1)
	dumpToTape(t, sv, drive, 0, nil)
	total := drive.Loaded().Records()

	for _, frac := range []int{1, 4, total * 3 / 4} {
		dst := newFS(t, 4096)
		drive.Rewind(nil)
		jam := &truncatedSource{inner: NewDriveSource(drive, nil, 0), left: frac}
		Restore(ctx, RestoreOptions{FS: dst, Source: jam, KernelIntegrated: true})

		drive.Rewind(nil)
		if _, err := Restore(ctx, RestoreOptions{
			FS: dst, Source: NewDriveSource(drive, nil, 0), KernelIntegrated: true,
		}); err != nil {
			t.Fatalf("cut at %d records: restart failed: %v", frac, err)
		}
		assertTreesEqual(t, digests(t, sv, "/"), digests(t, dst.ActiveView(), "/"))
	}
}
