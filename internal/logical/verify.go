package logical

import (
	"bytes"
	"context"
	"fmt"
	"io"

	"repro/internal/dumpfmt"
	"repro/internal/obs"
	"repro/internal/wafl"
)

// Verification: the paper's introduction is blunt about why this
// matters — "horror stories abound concerning system administrators
// attempting to restore file systems after a disaster occurs, only to
// discover that all the backup tapes made in the last year are not
// readable." Verify reads a dump stream end to end and compares it
// against a live view without writing anything, so a nightly dump can
// be checked while it is still cheap to re-run.

// VerifyResult reports a verification pass.
type VerifyResult struct {
	FilesChecked int
	DirsChecked  int
	BytesRead    int64
	// Problems lists mismatches between tape and filesystem; empty
	// means the dump faithfully captures the view.
	Problems []string
	// SkippedUnits counts corrupt 1 KB units the reader resynced over.
	SkippedUnits int
}

// VerifyOptions configures a verification pass.
type VerifyOptions struct {
	// View is the filesystem state the dump is expected to match —
	// normally the snapshot the dump was taken from.
	View *wafl.View
	// Source supplies the dump stream.
	Source dumpfmt.Source
	// Subtree is the dump root used at dump time ("" = whole fs).
	Subtree string
}

// Verify checks a dump stream against a filesystem view.
func Verify(ctx context.Context, opts VerifyOptions) (*VerifyResult, error) {
	if opts.View == nil || opts.Source == nil {
		return nil, fmt.Errorf("logical: nil view or source")
	}
	ctx, span := obs.Start(ctx, "logical.verify")
	defer span.End()
	r := dumpfmt.NewReader(opts.Source)
	res := &VerifyResult{}
	addf := func(format string, args ...interface{}) {
		res.Problems = append(res.Problems, fmt.Sprintf(format, args...))
	}

	stats := &RestoreStats{}
	des, pending, err := readDirectories(r, stats)
	if err != nil {
		return nil, err
	}
	res.BytesRead += stats.BytesRead

	// Check the directory image: every tape entry must exist in the
	// view with the same type, and vice versa.
	rootIno := des.rootIno
	fsRoot := wafl.RootIno
	if opts.Subtree != "" {
		fsRoot, err = opts.View.Namei(ctx, opts.Subtree)
		if err != nil {
			return nil, fmt.Errorf("logical: verify subtree %q: %w", opts.Subtree, err)
		}
	}
	inoMap := map[wafl.Inum]wafl.Inum{rootIno: fsRoot} // tape ino → fs ino
	queue := []wafl.Inum{rootIno}
	seen := map[wafl.Inum]bool{}
	locs := map[wafl.Inum]location{}
	for len(queue) > 0 {
		d := queue[0]
		queue = queue[1:]
		if seen[d] {
			continue
		}
		seen[d] = true
		ents, onTape := des.ents[d]
		if !onTape {
			continue
		}
		res.DirsChecked++
		fsDir, ok := inoMap[d]
		if !ok {
			continue
		}
		fsEnts, err := opts.View.Readdir(ctx, fsDir)
		if err != nil {
			addf("dir (tape ino %d): cannot read filesystem dir: %v", d, err)
			continue
		}
		fsByName := make(map[string]wafl.DirEnt, len(fsEnts))
		for _, e := range fsEnts {
			if e.Name != "." && e.Name != ".." {
				fsByName[e.Name] = e
			}
		}
		for _, e := range ents {
			if e.Name == "." || e.Name == ".." {
				continue
			}
			fe, ok := fsByName[e.Name]
			if !ok {
				addf("tape has %q (ino %d) but the filesystem does not", e.Name, e.Ino)
				continue
			}
			if fe.Type != e.Type {
				addf("%q: type differs (tape %o, fs %o)", e.Name, e.Type, fe.Type)
			}
			delete(fsByName, e.Name)
			if _, dup := inoMap[e.Ino]; !dup {
				inoMap[e.Ino] = fe.Ino
				locs[e.Ino] = location{dir: d, name: e.Name}
			}
			if e.Type == wafl.ModeDir {
				queue = append(queue, e.Ino)
			}
		}
		for name := range fsByName {
			addf("filesystem has %q but the tape does not", name)
		}
	}

	// Stream the file section, comparing contents against the view.
	h := pending
	for {
		if h == nil {
			h, err = r.NextHeader()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, err
			}
		}
		if h.Type == dumpfmt.TSEnd {
			break
		}
		if h.Type != dumpfmt.TSInode {
			if h.Type == dumpfmt.TSAddr {
				if _, err := r.ReadSegments(countPresent(h.Addrs)); err != nil {
					return nil, err
				}
			}
			h = nil
			continue
		}
		next, err := verifyFile(ctx, opts.View, r, h, inoMap, locs, res)
		if err != nil {
			return nil, err
		}
		h = next
	}
	res.SkippedUnits = r.Skipped()
	span.SetAttr("files", res.FilesChecked)
	span.SetAttr("dirs", res.DirsChecked)
	span.SetAttr("bytes", res.BytesRead)
	span.SetAttr("problems", len(res.Problems))
	m := obs.MetricsFrom(ctx)
	lbl := obs.Labels{"engine": "logical"}
	m.Counter("verify_bytes_total", lbl).Add(res.BytesRead)
	m.Counter("verify_problems_total", lbl).Add(int64(len(res.Problems)))
	m.Counter("verify_skipped_units_total", lbl).Add(int64(res.SkippedUnits))
	return res, nil
}

// verifyFile compares one file's tape records against the view.
func verifyFile(ctx context.Context, view *wafl.View, r *dumpfmt.Reader, h *dumpfmt.Header, inoMap map[wafl.Inum]wafl.Inum, locs map[wafl.Inum]location, res *VerifyResult) (*dumpfmt.Header, error) {
	tapeIno := wafl.Inum(h.Inumber)
	di := h.Dinode
	fsIno, known := inoMap[tapeIno]
	name := fmt.Sprintf("tape ino %d", tapeIno)
	if loc, ok := locs[tapeIno]; ok {
		name = loc.name
	}
	addf := func(format string, args ...interface{}) {
		res.Problems = append(res.Problems, fmt.Sprintf(format, args...))
	}

	var fsInode wafl.Inode
	var err error
	if known {
		fsInode, err = view.GetInode(ctx, fsIno)
		if err != nil {
			addf("%s: on tape but unreadable in the filesystem: %v", name, err)
			known = false
		}
	} else {
		addf("%s: on tape but not referenced by any tape directory", name)
	}
	if known {
		res.FilesChecked++
		if fsInode.Size != di.Size {
			addf("%s: size differs (tape %d, fs %d)", name, di.Size, fsInode.Size)
		}
		if fsInode.Mode&07777 != di.Mode&07777 {
			addf("%s: mode differs (tape %o, fs %o)", name, di.Mode&07777, fsInode.Mode&07777)
		}
	}

	// Walk the data, comparing present segments byte for byte.
	segBase := int64(0)
	cur := h
	buf := make([]byte, dumpfmt.TPBSize)
	for {
		segs, err := r.ReadSegments(countPresent(cur.Addrs))
		if err != nil && err != io.ErrUnexpectedEOF {
			return nil, err
		}
		si := 0
		for i, a := range cur.Addrs {
			if a != 1 || si >= len(segs) {
				continue
			}
			seg := segs[si]
			si++
			res.BytesRead += int64(len(seg))
			if !known || fsInode.Size != di.Size {
				continue
			}
			off := uint64(segBase+int64(i)) * dumpfmt.TPBSize
			if rem := di.Size - off; rem < uint64(len(seg)) {
				seg = seg[:rem]
			}
			n, err := view.ReadAt(ctx, fsIno, off, buf[:len(seg)])
			if err != nil || n != len(seg) || !bytes.Equal(buf[:n], seg) {
				addf("%s: contents differ at offset %d", name, off)
				known = false // one report per file
			}
		}
		segBase += int64(len(cur.Addrs))
		next, err := r.NextHeader()
		if err == io.EOF {
			return nil, nil
		}
		if err != nil {
			return nil, err
		}
		if next.Type == dumpfmt.TSAddr && next.Inumber == uint32(tapeIno) {
			cur = next
			continue
		}
		return next, nil
	}
}
