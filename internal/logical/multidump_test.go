package logical

import (
	"math/rand"
	"testing"

	"repro/internal/wafl"
	"repro/internal/workload"
)

// TestTwoDumpsOnOneCartridge stores two dump streams as separate tape
// files on a single cartridge and restores each independently via
// tape-file seeks — the operational pattern for small nightly dumps.
func TestTwoDumpsOnOneCartridge(t *testing.T) {
	src := newFS(t, 8192)
	src.WriteFile(ctx, "/first/one.txt", []byte("dump one"), 0644)
	src.CreateSnapshot(ctx, "d1")
	sv1, _ := src.SnapshotView("d1")

	drive := newTape(t, 0, 1)
	dumpToTape(t, sv1, drive, 0, nil)
	if err := drive.WriteFileMark(nil); err != nil {
		t.Fatal(err)
	}

	src.WriteFile(ctx, "/second/two.txt", []byte("dump two"), 0644)
	src.CreateSnapshot(ctx, "d2")
	sv2, _ := src.SnapshotView("d2")
	dumpToTape(t, sv2, drive, 0, nil)

	// Restore tape file 0 (first dump): no second/two.txt yet.
	dstA := newFS(t, 8192)
	if err := drive.SeekFile(nil, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(ctx, RestoreOptions{
		FS: dstA, Source: NewDriveSource(drive, nil, 0), KernelIntegrated: true,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := dstA.ActiveView().ReadFile(ctx, "/first/one.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := dstA.ActiveView().ReadFile(ctx, "/second/two.txt"); err == nil {
		t.Fatal("first tape file leaked the second dump's contents")
	}

	// Restore tape file 1 (second dump): both files present.
	dstB := newFS(t, 8192)
	if err := drive.SeekFile(nil, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(ctx, RestoreOptions{
		FS: dstB, Source: NewDriveSource(drive, nil, 0), KernelIntegrated: true,
	}); err != nil {
		t.Fatal(err)
	}
	assertTreesEqual(t, digests(t, sv2, "/"), digests(t, dstB.ActiveView(), "/"))
}

// TestDumpRestorePropertyRandomTrees round-trips randomized filesystem
// states — sizes, depths, links, holes and churn all drawn from a
// seeded generator — and requires digest equality every time.
func TestDumpRestorePropertyRandomTrees(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		seed := int64(1000 + trial*37)
		r := rand.New(rand.NewSource(seed))
		src := newFS(t, 16384)
		spec := workload.Spec{
			Seed:         seed,
			Files:        r.Intn(60) + 10,
			DirFanout:    r.Intn(10) + 2,
			MeanFileSize: (r.Intn(24) + 2) << 10,
			Symlinks:     r.Intn(5),
			Hardlinks:    r.Intn(4),
		}
		paths, err := workload.Generate(ctx, src, spec)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if _, err := workload.Age(ctx, src, paths, workload.AgeSpec{
			Seed: seed + 1, Rounds: r.Intn(3) + 1, ChurnPerRound: len(paths) / 2,
			MeanFileSize: spec.MeanFileSize,
		}); err != nil {
			t.Fatalf("trial %d aging: %v", trial, err)
		}
		// A sparse oddball file in every trial.
		ino, _ := src.Create(ctx, wafl.RootIno, "sparse.odd", 0640, 3, 4)
		src.Write(ctx, ino, uint64(r.Intn(100)*4096), []byte("island"))

		if err := src.CreateSnapshot(ctx, "p"); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sv, _ := src.SnapshotView("p")
		drive := newTape(t, 0, 1)
		dumpToTape(t, sv, drive, 0, nil)

		dst := newFS(t, 16384)
		restoreFromTape(t, dst, drive)
		assertTreesEqual(t, digests(t, sv, "/"), digests(t, dst.ActiveView(), "/"))
		if err := dst.MustCheck(ctx); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
