package logical

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/dumpfmt"
	"repro/internal/obs"
	"repro/internal/wafl"
)

// RestoreOptions configures a logical restore.
type RestoreOptions struct {
	// FS is the target filesystem.
	FS *wafl.FS
	// Source supplies the dump stream.
	Source dumpfmt.Source
	// TargetDir is where the dump root is grafted ("" or "/" = root).
	TargetDir string
	// Files optionally restricts the restore to these dump-relative
	// paths and their descendants — "stupidity recovery" (paper §1).
	Files []string
	// SyncDeletes removes entries that exist in the target but not in
	// the dump's directories; set when applying an incremental on top
	// of its base so deletions and renames propagate.
	SyncDeletes bool
	// KernelIntegrated enables the paper's §3 fast paths: directory
	// permissions set correctly at creation (no final permission
	// pass) and no user-level data copies. Off models a user-level
	// BSD restore.
	KernelIntegrated bool
	// Salvage tolerates a stream that ends mid-file — the tail left on
	// tape by a dump that aborted after its last checkpoint. Everything
	// before the tear restores normally; the torn file is dropped and
	// TornTail is set in the stats. The resumed dump's stream re-dumps
	// that file, so a concatenated restore loses nothing.
	Salvage bool
	// Stages receives stage boundaries; may be nil.
	Stages StageRecorder
}

// RestoreStats reports what a restore did.
type RestoreStats struct {
	FilesRestored int
	DirsCreated   int
	FilesSkipped  int // present on tape, not selected
	LinksMade     int
	Deleted       int // entries removed by incremental sync
	BytesRead     int64
	SkippedUnits  int  // corrupt 1 KB units skipped by resync
	TornTail      bool // stream ended mid-file and Salvage dropped the tail
}

// desiccated is restore's in-memory "desiccated file system": the
// dump's directory structure, read from tape in pass one, over which
// restore runs its own namei without laying directories on disk
// (paper §3).
type desiccated struct {
	rootIno  wafl.Inum
	ents     map[wafl.Inum][]wafl.DirEnt
	attrs    map[wafl.Inum]dumpfmt.DumpInode
	haveBits *dumpfmt.InoMap // inodes present on this tape
	usedBits *dumpfmt.InoMap // inodes allocated at dump time
}

// lookup runs one path component.
func (d *desiccated) lookup(dir wafl.Inum, name string) (wafl.DirEnt, bool) {
	for _, e := range d.ents[dir] {
		if e.Name == name {
			return e, true
		}
	}
	return wafl.DirEnt{}, false
}

// namei resolves a dump-relative path against the desiccated tree.
func (d *desiccated) namei(p string) (wafl.Inum, bool) {
	cur := d.rootIno
	for _, c := range wafl.SplitPath(p) {
		e, ok := d.lookup(cur, c)
		if !ok {
			return 0, false
		}
		cur = e.Ino
	}
	return cur, true
}

// Restore reads a dump stream and recreates its contents on opts.FS.
func Restore(ctx context.Context, opts RestoreOptions) (*RestoreStats, error) {
	if opts.FS == nil || opts.Source == nil {
		return nil, fmt.Errorf("logical: nil fs or source")
	}
	r := dumpfmt.NewReader(opts.Source)
	stats := &RestoreStats{}
	ctx, restoreSpan := obs.Start(ctx, "logical.restore")
	defer func() {
		restoreSpan.SetAttr("files", stats.FilesRestored)
		restoreSpan.SetAttr("dirs", stats.DirsCreated)
		restoreSpan.SetAttr("bytes", stats.BytesRead)
		restoreSpan.End()
	}()
	var phaseSpan *obs.Span
	begin := func(name string) {
		if opts.Stages != nil {
			opts.Stages.Begin(name)
		}
		_, phaseSpan = obs.Start(ctx, "logical."+obs.Slug(name))
	}
	end := func() {
		if opts.Stages != nil {
			opts.Stages.End()
		}
		phaseSpan.End()
		phaseSpan = nil
	}

	// Pass one: read maps and directories into the desiccated tree.
	begin("Reading directories")
	des, pending, err := readDirectories(r, stats)
	end()
	if err != nil {
		return nil, err
	}

	// Resolve the selection (nil = everything).
	var wanted map[wafl.Inum]bool
	if len(opts.Files) > 0 {
		wanted = make(map[wafl.Inum]bool)
		for _, p := range opts.Files {
			ino, ok := des.namei(p)
			if !ok {
				return nil, fmt.Errorf("logical: %q not on this tape", p)
			}
			markSubtree(des, ino, wanted)
		}
	}

	// Create the directory skeleton (and, for incremental application,
	// sync deletions), building the dump→filesystem inode map.
	begin("Creating files")
	rst := &restoreState{
		opts: opts, fs: opts.FS, des: des, wanted: wanted, stats: stats,
		inoMap: make(map[wafl.Inum]wafl.Inum),
	}
	if err := rst.buildSkeleton(ctx); err != nil {
		end()
		return nil, err
	}
	end()

	// Stream files onto the filesystem.
	begin("Filling in data")
	err = rst.streamFiles(ctx, r, pending)
	end()
	if err != nil {
		if opts.Salvage && errors.Is(err, io.ErrUnexpectedEOF) {
			stats.TornTail = true
		} else {
			return nil, err
		}
	}

	// Final pass: directory times (and permissions when not
	// kernel-integrated — the paper's in-kernel restore "can set the
	// permissions on directories correctly when they are created and
	// does not need the final pass").
	begin("Setting directory attributes")
	err = rst.finishDirs(ctx)
	end()
	if err != nil {
		return nil, err
	}
	if err := opts.FS.CP(ctx); err != nil {
		return nil, err
	}
	stats.SkippedUnits = r.Skipped()
	m := obs.MetricsFrom(ctx)
	m.Counter("logical_restore_files_total", nil).Add(int64(stats.FilesRestored))
	m.Counter("logical_restore_dirs_total", nil).Add(int64(stats.DirsCreated))
	m.Counter("logical_restore_bytes_total", nil).Add(stats.BytesRead)
	return stats, nil
}

// readDirectories consumes the stream up to the first non-directory
// TS_INODE, returning the desiccated tree and the pending header.
func readDirectories(r *dumpfmt.Reader, stats *RestoreStats) (*desiccated, *dumpfmt.Header, error) {
	des := &desiccated{
		ents:  make(map[wafl.Inum][]wafl.DirEnt),
		attrs: make(map[wafl.Inum]dumpfmt.DumpInode),
	}
	for {
		h, err := r.NextHeader()
		if err == io.EOF {
			return des, nil, nil
		}
		if err != nil {
			return nil, nil, err
		}
		switch h.Type {
		case dumpfmt.TSTape, dumpfmt.TSCheckpoint:
			continue
		case dumpfmt.TSClri, dumpfmt.TSBits:
			segs, err := r.ReadSegments(countPresent(h.Addrs))
			if err != nil {
				return nil, nil, err
			}
			raw := joinSegments(segs, int(h.Dinode.Size))
			m := dumpfmt.InoMapFromBytes(raw)
			if h.Type == dumpfmt.TSBits {
				des.haveBits = m
				des.rootIno = wafl.Inum(h.Inumber)
			} else {
				des.usedBits = m
				des.rootIno = wafl.Inum(h.Inumber)
			}
			stats.BytesRead += int64(len(raw))
		case dumpfmt.TSInode, dumpfmt.TSAddr:
			if !isDirMode(h.Dinode.Mode) || h.Type == dumpfmt.TSAddr {
				return des, h, nil // directories are over
			}
			data, err := readBlobSegments(r, h)
			if err != nil {
				return nil, nil, err
			}
			stats.BytesRead += int64(len(data))
			ents, err := DecodeDirEnts(data)
			if err != nil {
				// A damaged directory loses only its own entries.
				continue
			}
			ino := wafl.Inum(h.Inumber)
			des.ents[ino] = ents
			des.attrs[ino] = h.Dinode
		case dumpfmt.TSEnd:
			return des, nil, nil
		}
	}
}

// readBlobSegments reads a hole-free blob (directory data or a map),
// following TS_ADDR continuations for blobs larger than one header's
// segment map can describe.
func readBlobSegments(r *dumpfmt.Reader, h *dumpfmt.Header) ([]byte, error) {
	totalSegs := int((h.Dinode.Size + dumpfmt.TPBSize - 1) / dumpfmt.TPBSize)
	var buf []byte
	cur := h
	read := 0
	for {
		segs, err := r.ReadSegments(countPresent(cur.Addrs))
		if err != nil {
			return nil, err
		}
		for _, s := range segs {
			buf = append(buf, s...)
		}
		read += len(cur.Addrs)
		if read >= totalSegs {
			break
		}
		next, err := r.NextHeader()
		if err != nil {
			return nil, err
		}
		if next.Type != dumpfmt.TSAddr || next.Inumber != h.Inumber {
			return nil, fmt.Errorf("logical: blob for inode %d truncated at segment %d", h.Inumber, read)
		}
		cur = next
	}
	if int(h.Dinode.Size) < len(buf) {
		buf = buf[:h.Dinode.Size]
	}
	return buf, nil
}

func countPresent(addrs []byte) int {
	n := 0
	for _, a := range addrs {
		if a == 1 {
			n++
		}
	}
	return n
}

func joinSegments(segs [][]byte, size int) []byte {
	var buf []byte
	for _, s := range segs {
		buf = append(buf, s...)
	}
	if size >= 0 && size < len(buf) {
		buf = buf[:size]
	}
	return buf
}

func isDirMode(mode uint32) bool { return wafl.IsDir(mode) }

// markSubtree marks ino and (for directories) everything beneath it.
func markSubtree(des *desiccated, ino wafl.Inum, out map[wafl.Inum]bool) {
	if out[ino] {
		return
	}
	out[ino] = true
	for _, e := range des.ents[ino] {
		if e.Name == "." || e.Name == ".." {
			continue
		}
		markSubtree(des, e.Ino, out)
	}
}

// restoreState carries pass-two state.
type restoreState struct {
	opts   RestoreOptions
	fs     *wafl.FS
	des    *desiccated
	wanted map[wafl.Inum]bool
	stats  *RestoreStats
	inoMap map[wafl.Inum]wafl.Inum // dump ino → fs ino

	// locations of each dump ino across the dump's directories, for
	// hard links; built lazily.
	locs map[wafl.Inum][]location

	dirsToFinish []wafl.Inum // dump dir inos created/updated this run
}

type location struct {
	dir  wafl.Inum // dump dir ino
	name string
}

func (rst *restoreState) selected(ino wafl.Inum) bool {
	return rst.wanted == nil || rst.wanted[ino]
}

// buildSkeleton walks the dump's directory tree breadth-first,
// creating missing directories, recording existing ones, and (when
// SyncDeletes) removing target entries absent from the dump.
func (rst *restoreState) buildSkeleton(ctx context.Context) error {
	target := rst.opts.TargetDir
	fsRoot, err := rst.fs.MkdirAll(ctx, target, 0755)
	if err != nil {
		return err
	}
	des := rst.des
	rst.inoMap[des.rootIno] = fsRoot
	rst.locs = make(map[wafl.Inum][]location)

	queue := []wafl.Inum{des.rootIno}
	seen := map[wafl.Inum]bool{}
	av := rst.fs.ActiveView()
	for len(queue) > 0 {
		d := queue[0]
		queue = queue[1:]
		if seen[d] {
			continue
		}
		seen[d] = true
		fsDir, ok := rst.inoMap[d]
		if !ok {
			continue // parent was not selected/created
		}
		if _, inDump := des.ents[d]; inDump {
			rst.dirsToFinish = append(rst.dirsToFinish, d)
		}

		dumpNames := make(map[string]wafl.DirEnt)
		for _, e := range des.ents[d] {
			if e.Name == "." || e.Name == ".." {
				continue
			}
			dumpNames[e.Name] = e
			rst.locs[e.Ino] = append(rst.locs[e.Ino], location{dir: d, name: e.Name})
		}

		// Deletion sync: anything on the filesystem that the dump's
		// copy of this directory does not mention was deleted (or
		// renamed away) between base and incremental. Only directories
		// whose listing is actually on this tape may be synced — an
		// incremental omits unchanged directories entirely, and their
		// absence says nothing about deletions.
		if _, onTape := des.ents[d]; rst.opts.SyncDeletes && onTape {
			existing, err := av.Readdir(ctx, fsDir)
			if err != nil {
				return err
			}
			for _, e := range existing {
				if e.Name == "." || e.Name == ".." {
					continue
				}
				if _, ok := dumpNames[e.Name]; !ok {
					if err := rst.removeRecursive(ctx, fsDir, e); err != nil {
						return err
					}
				}
			}
		}

		// Create or map subdirectories; map existing files.
		names := make([]string, 0, len(dumpNames))
		for n := range dumpNames {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			e := dumpNames[n]
			if e.Type == wafl.ModeDir {
				if !rst.selected(e.Ino) && rst.wanted != nil {
					// Still descend: a selected file may live below.
					if !rst.anySelectedBelow(e.Ino) {
						continue
					}
				}
				fsIno, err := av.Lookup(ctx, fsDir, n)
				if err != nil {
					attrs := des.attrs[e.Ino]
					perm := attrs.Mode & 0777
					if perm == 0 {
						perm = 0755
					}
					if !rst.opts.KernelIntegrated {
						perm = 0700 // provisional; fixed in the final pass
					}
					fsIno, err = rst.fs.Mkdir(ctx, fsDir, n, perm, attrs.UID, attrs.GID)
					if err != nil {
						return err
					}
					rst.stats.DirsCreated++
				}
				rst.inoMap[e.Ino] = fsIno
				queue = append(queue, e.Ino)
			} else {
				if fsIno, err := av.Lookup(ctx, fsDir, n); err == nil {
					rst.inoMap[e.Ino] = fsIno
				}
			}
		}
	}
	return nil
}

// anySelectedBelow reports whether the selection reaches into dir.
func (rst *restoreState) anySelectedBelow(dir wafl.Inum) bool {
	if rst.wanted[dir] {
		return true
	}
	for _, e := range rst.des.ents[dir] {
		if e.Name == "." || e.Name == ".." {
			continue
		}
		if rst.wanted[e.Ino] {
			return true
		}
		if e.Type == wafl.ModeDir && rst.anySelectedBelow(e.Ino) {
			return true
		}
	}
	return false
}

// removeRecursive deletes a directory entry and any subtree under it.
func (rst *restoreState) removeRecursive(ctx context.Context, fsDir wafl.Inum, ent wafl.DirEnt) error {
	av := rst.fs.ActiveView()
	if ent.Type == wafl.ModeDir {
		children, err := av.Readdir(ctx, ent.Ino)
		if err != nil {
			return err
		}
		for _, c := range children {
			if c.Name == "." || c.Name == ".." {
				continue
			}
			if err := rst.removeRecursive(ctx, ent.Ino, c); err != nil {
				return err
			}
		}
		rst.stats.Deleted++
		return rst.fs.Rmdir(ctx, fsDir, ent.Name)
	}
	rst.stats.Deleted++
	return rst.fs.Remove(ctx, fsDir, ent.Name)
}

// streamFiles processes the file portion of the stream.
func (rst *restoreState) streamFiles(ctx context.Context, r *dumpfmt.Reader, pending *dumpfmt.Header) error {
	h := pending
	var err error
	for {
		if h == nil {
			h, err = r.NextHeader()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
		}
		switch h.Type {
		case dumpfmt.TSEnd:
			return nil
		case dumpfmt.TSTape, dumpfmt.TSClri, dumpfmt.TSBits, dumpfmt.TSCheckpoint:
			h = nil
			continue
		case dumpfmt.TSAddr:
			// Continuation with no preceding TS_INODE (its header was
			// lost to corruption): skip its data.
			if _, err := r.ReadSegments(countPresent(h.Addrs)); err != nil {
				return err
			}
			h = nil
			continue
		case dumpfmt.TSInode:
			next, err := rst.restoreFile(ctx, r, h)
			if err != nil {
				return err
			}
			h = next
		default:
			h = nil
		}
	}
}

// restoreFile lays one file (and its continuations) onto the
// filesystem, returning the first header that belongs to the next
// file.
func (rst *restoreState) restoreFile(ctx context.Context, r *dumpfmt.Reader, h *dumpfmt.Header) (*dumpfmt.Header, error) {
	dumpIno := wafl.Inum(h.Inumber)
	di := h.Dinode
	selected := rst.selected(dumpIno)

	var fsIno wafl.Inum
	var created bool
	if selected {
		var ok bool
		fsIno, ok = rst.inoMap[dumpIno]
		if ok {
			// Existing file updated by this (incremental) dump.
			if err := rst.fs.Truncate(ctx, fsIno, 0); err != nil {
				return nil, err
			}
		} else {
			locs := rst.locs[dumpIno]
			if len(locs) == 0 {
				// File not referenced by any dumped directory —
				// dangling; skip its data.
				selected = false
			} else {
				parentFs, ok := rst.inoMap[locs[0].dir]
				if !ok {
					selected = false
				} else {
					var err error
					perm := di.Mode & 07777
					if wafl.IsSymlink(di.Mode) {
						fsIno, err = rst.fs.Symlink(ctx, parentFs, locs[0].name, "")
						// Target data arrives as file contents below;
						// Symlink wrote "", so just write data.
					} else {
						fsIno, err = rst.fs.Create(ctx, parentFs, locs[0].name, perm, di.UID, di.GID)
					}
					if err != nil {
						return nil, err
					}
					rst.inoMap[dumpIno] = fsIno
					created = true
				}
			}
		}
	}

	// Walk this file's headers (TS_INODE + TS_ADDRs), applying or
	// skipping data. Contiguous segments are coalesced into large
	// writes — one filesystem operation (and one NVRAM log entry) per
	// run rather than per 1 KB segment, as a real restore does.
	segBase := int64(0)
	cur := h
	var batch []byte
	var batchOff uint64
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		err := rst.fs.Write(ctx, fsIno, batchOff, batch)
		batch = batch[:0]
		return err
	}
	const maxBatch = 64 << 10
	for {
		present := countPresent(cur.Addrs)
		segs, err := r.ReadSegments(present)
		if err != nil && err != io.ErrUnexpectedEOF {
			return nil, err
		}
		if selected {
			si := 0
			for i, a := range cur.Addrs {
				if a != 1 {
					continue
				}
				if si >= len(segs) {
					break
				}
				off := uint64(segBase+int64(i)) * dumpfmt.TPBSize
				seg := segs[si]
				si++
				// Trim the final segment to the file size.
				if rem := di.Size - off; rem < uint64(len(seg)) {
					seg = seg[:rem]
				}
				if len(seg) == 0 {
					continue
				}
				if len(batch) > 0 && (batchOff+uint64(len(batch)) != off || len(batch) >= maxBatch) {
					if err := flush(); err != nil {
						return nil, err
					}
				}
				if len(batch) == 0 {
					batchOff = off
				}
				batch = append(batch, seg...)
				rst.stats.BytesRead += int64(len(seg))
			}
		} else {
			for _, s := range segs {
				rst.stats.BytesRead += int64(len(s))
			}
		}
		segBase += int64(len(cur.Addrs))
		next, err := r.NextHeader()
		if err == io.EOF {
			cur = nil
			break
		}
		if err != nil {
			return nil, err
		}
		if next.Type == dumpfmt.TSAddr && next.Inumber == uint32(dumpIno) {
			cur = next
			continue
		}
		cur = next
		break
	}

	if selected {
		if err := flush(); err != nil {
			return nil, err
		}
		// Size was written exactly; fix up attributes.
		attrs := wafl.Attr{Mtime: &di.Mtime, Atime: &di.Atime}
		mode := di.Mode & 07777
		xm := di.XMode
		attrs.XMode = &xm
		if rst.opts.KernelIntegrated || created {
			attrs.Mode = &mode
		}
		if err := rst.fs.SetAttr(ctx, rst.inoMap[dumpIno], attrs); err != nil {
			return nil, err
		}
		// Hard links: connect remaining locations.
		if locs := rst.locs[dumpIno]; !wafl.IsDir(di.Mode) && len(locs) > 1 {
			for _, loc := range locs[1:] {
				parentFs, ok := rst.inoMap[loc.dir]
				if !ok {
					continue
				}
				if _, err := rst.fs.ActiveView().Lookup(ctx, parentFs, loc.name); err == nil {
					continue
				}
				if err := rst.fs.Link(ctx, rst.inoMap[dumpIno], parentFs, loc.name); err != nil {
					return nil, err
				}
				rst.stats.LinksMade++
			}
		}
		rst.stats.FilesRestored++
	} else {
		rst.stats.FilesSkipped++
	}
	return cur, nil
}

// finishDirs applies directory times (and, in user-level mode,
// permissions) after all creation activity is done.
func (rst *restoreState) finishDirs(ctx context.Context) error {
	for _, d := range rst.dirsToFinish {
		fsIno, ok := rst.inoMap[d]
		if !ok {
			continue
		}
		di, ok := rst.des.attrs[d]
		if !ok {
			continue
		}
		attrs := wafl.Attr{Mtime: &di.Mtime, Atime: &di.Atime}
		mode := di.Mode & 07777
		if mode != 0 {
			attrs.Mode = &mode
		}
		uid, gid, xm := di.UID, di.GID, di.XMode
		attrs.UID, attrs.GID, attrs.XMode = &uid, &gid, &xm
		if err := rst.fs.SetAttr(ctx, fsIno, attrs); err != nil {
			return err
		}
	}
	return nil
}

// RestorePath is a convenience for examples: restore only the given
// paths under targetDir.
func RestorePath(ctx context.Context, fs *wafl.FS, src dumpfmt.Source, targetDir string, files ...string) (*RestoreStats, error) {
	return Restore(ctx, RestoreOptions{
		FS: fs, Source: src, TargetDir: targetDir,
		Files: files, KernelIntegrated: true,
	})
}
