package logical

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/tape"
	"repro/internal/wafl"
	"repro/internal/workload"
)

// TestDamageReportExactHoleMapping injects one latent sector error
// under a known file block and checks the dump's damage report names
// exactly that block — and that the restored tree is byte-identical
// everywhere else, with zeros in the hole.
func TestDamageReportExactHoleMapping(t *testing.T) {
	mem := storage.NewMemDevice(8192)
	fd := storage.NewFaultDevice(mem)
	fs, err := wafl.Mkfs(ctx, fd, nil, wafl.Options{CacheBlocks: 16})
	if err != nil {
		t.Fatal(err)
	}
	content := make([]byte, 64<<10)
	for i := range content {
		content[i] = byte(i%251 + 1) // nonzero, so a holed block differs
	}
	if _, err := fs.WriteFile(ctx, "/d/victim.dat", content, 0644); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.WriteFile(ctx, "/d/bystander.dat", content[:20<<10], 0644); err != nil {
		t.Fatal(err)
	}
	if err := fs.CP(ctx); err != nil {
		t.Fatal(err)
	}

	// Remount so the dump's reads go to the device, not the warm cache.
	fs, err = wafl.Mount(ctx, fd, nil, wafl.Options{CacheBlocks: 16})
	if err != nil {
		t.Fatal(err)
	}
	view := fs.ActiveView()
	ino, err := view.Namei(ctx, "/d/victim.dat")
	if err != nil {
		t.Fatal(err)
	}
	const badFbn = 3
	pbn, err := view.BlockAt(ctx, ino, badFbn)
	if err != nil {
		t.Fatal(err)
	}
	if pbn == 0 {
		t.Fatal("victim fbn is a hole")
	}
	fd.FailRead(int(pbn), storage.ErrLatentSector)

	var logged []string
	drive := newTape(t, 0, 1)
	stats, err := Dump(ctx, DumpOptions{
		View: view, Sink: &DriveSink{Drive: drive}, Label: "dmg", ReadAhead: 8,
		Log: func(line string) { logged = append(logged, line) },
	})
	if err != nil {
		t.Fatalf("dump should survive a data-block fault, got %v", err)
	}
	if len(stats.Damaged) != 1 {
		t.Fatalf("damage report: %+v, want exactly one block", stats.Damaged)
	}
	d := stats.Damaged[0]
	if d.Ino != ino || d.Fbn != badFbn {
		t.Fatalf("damage report names ino %d fbn %d, want ino %d fbn %d", d.Ino, d.Fbn, ino, badFbn)
	}
	if len(logged) != 1 || !strings.Contains(logged[0], "hole-mapped") {
		t.Fatalf("operator log: %q", logged)
	}

	dst := newFS(t, 8192)
	restoreFromTape(t, dst, drive)
	rino, err := dst.ActiveView().Namei(ctx, "/d/victim.dat")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(content))
	if _, err := dst.ActiveView().ReadAt(ctx, rino, 0, got); err != nil {
		t.Fatal(err)
	}
	zero := make([]byte, wafl.BlockSize)
	for fbn := 0; fbn*wafl.BlockSize < len(content); fbn++ {
		blk := got[fbn*wafl.BlockSize : (fbn+1)*wafl.BlockSize]
		if fbn == badFbn {
			if !bytes.Equal(blk, zero) {
				t.Fatalf("damaged fbn %d restored as non-zero", fbn)
			}
		} else if !bytes.Equal(blk, content[fbn*wafl.BlockSize:(fbn+1)*wafl.BlockSize]) {
			t.Fatalf("undamaged fbn %d corrupted by salvage", fbn)
		}
	}
	bino, err := dst.ActiveView().Namei(ctx, "/d/bystander.dat")
	if err != nil {
		t.Fatal(err)
	}
	bgot := make([]byte, 20<<10)
	if _, err := dst.ActiveView().ReadAt(ctx, bino, 0, bgot); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bgot, content[:20<<10]) {
		t.Fatal("bystander file corrupted")
	}
}

// TestTransientMediaErrorRetriedBySink: a transient tape write error is
// absorbed by the sink's retry loop; the dump neither fails nor
// switches cartridges, and the stream restores intact.
func TestTransientMediaErrorRetriedBySink(t *testing.T) {
	src := newFS(t, 8192)
	workload.Generate(ctx, src, workload.Spec{Seed: 21, Files: 12, DirFanout: 4, MeanFileSize: 8 << 10})
	src.CreateSnapshot(ctx, "s")
	sv, _ := src.SnapshotView("s")

	drive := newTape(t, 0, 1)
	drive.FailNextWrite(true)
	sink := &DriveSink{Drive: drive}
	if _, err := Dump(ctx, DumpOptions{View: sv, Sink: sink, Label: "tr"}); err != nil {
		t.Fatalf("dump: %v", err)
	}
	retries, swaps := sink.MediaStats()
	if retries != 1 || swaps != 0 {
		t.Fatalf("media stats: %d retries, %d swaps; want 1, 0", retries, swaps)
	}

	dst := newFS(t, 8192)
	restoreFromTape(t, dst, drive)
	assertTreesEqual(t, digests(t, sv, "/"), digests(t, dst.ActiveView(), "/"))
}

// TestPersistentMediaErrorSwitchesCartridge: a persistent media error
// condemns the cartridge; the sink reports end-of-media and the stream
// writer moves the whole record to the next volume, losing nothing.
func TestPersistentMediaErrorSwitchesCartridge(t *testing.T) {
	src := newFS(t, 8192)
	workload.Generate(ctx, src, workload.Spec{Seed: 22, Files: 12, DirFanout: 4, MeanFileSize: 8 << 10})
	src.CreateSnapshot(ctx, "s")
	sv, _ := src.SnapshotView("s")

	drive := newTape(t, 0, 3)
	drive.FailNextWrite(false) // first record write damages cartridge "a"
	sink := &DriveSink{Drive: drive}
	if _, err := Dump(ctx, DumpOptions{View: sv, Sink: sink, Label: "pm"}); err != nil {
		t.Fatalf("dump: %v", err)
	}
	if _, swaps := sink.MediaStats(); swaps != 1 {
		t.Fatalf("swaps = %d, want 1", swaps)
	}
	drive.Flush(nil)

	// Cycle back to the (empty, damaged) first cartridge; the source
	// skips it and the stream reads off the replacement.
	for drive.Loaded().Label != "a" {
		if err := drive.Load(nil); err != nil {
			t.Fatal(err)
		}
	}
	drive.Rewind(nil)
	dst := newFS(t, 8192)
	stats, err := Restore(ctx, RestoreOptions{
		FS: dst, Source: NewDriveSource(drive, nil, 3), KernelIntegrated: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.FilesRestored == 0 {
		t.Fatal("nothing restored")
	}
	assertTreesEqual(t, digests(t, sv, "/"), digests(t, dst.ActiveView(), "/"))
}

// TestFreshCartridgeMediaErrorAlsoSwitches is the end-of-media corner
// the issue calls out: the volume fills, and the very first write on
// the replacement cartridge fails too. The writer must keep switching
// until a volume takes the continuation header.
func TestFreshCartridgeMediaErrorAlsoSwitches(t *testing.T) {
	// Pre-damage cartridge "b" (the write fails before any data lands,
	// so it stays empty).
	bad := tape.NewCartridge("b")
	scratch := tape.NewDrive(nil, "scratch", tape.DefaultParams())
	scratch.AddCartridges(bad)
	if err := scratch.Load(nil); err != nil {
		t.Fatal(err)
	}
	scratch.FailNextWrite(false)
	if err := scratch.WriteRecord(nil, []byte("x")); err == nil {
		t.Fatal("damaging write unexpectedly succeeded")
	}
	if !bad.Damaged() || bad.Records() != 0 {
		t.Fatalf("cartridge b: damaged=%v records=%d", bad.Damaged(), bad.Records())
	}

	src := newFS(t, 8192)
	workload.Generate(ctx, src, workload.Spec{Seed: 23, Files: 15, DirFanout: 6, MeanFileSize: 24 << 10})
	src.CreateSnapshot(ctx, "s")
	sv, _ := src.SnapshotView("s")

	p := tape.DefaultParams()
	p.Capacity = 96 << 10 // force spanning off cartridge "a"
	drive := tape.NewDrive(nil, "t0", p)
	drive.AddCartridges(tape.NewCartridge("a"), bad, tape.NewCartridge("c"), tape.NewCartridge("d"))
	if err := drive.Load(nil); err != nil {
		t.Fatal(err)
	}
	sink := &DriveSink{Drive: drive}
	stats, err := Dump(ctx, DumpOptions{View: sv, Sink: sink, Label: "eom", ReadAhead: 8})
	if err != nil {
		t.Fatalf("dump: %v", err)
	}
	if _, swaps := sink.MediaStats(); swaps != 1 {
		t.Fatalf("swaps = %d, want 1 (cartridge b abandoned)", swaps)
	}
	drive.Flush(nil)

	for drive.Loaded().Label != "a" {
		if err := drive.Load(nil); err != nil {
			t.Fatal(err)
		}
	}
	drive.Rewind(nil)
	dst := newFS(t, 8192)
	rstats, err := Restore(ctx, RestoreOptions{
		FS: dst, Source: NewDriveSource(drive, nil, 4), KernelIntegrated: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rstats.FilesRestored != stats.FilesDumped {
		t.Fatalf("restored %d files, dumped %d", rstats.FilesRestored, stats.FilesDumped)
	}
	assertTreesEqual(t, digests(t, sv, "/"), digests(t, dst.ActiveView(), "/"))
}

// TestOfflineCheckpointResume drives the whole restart story: the
// drive drops offline mid-dump, the failed Dump hands back a
// checkpoint, a re-invocation resumes past the files already on tape,
// and restoring both streams in order rebuilds the exact tree.
func TestOfflineCheckpointResume(t *testing.T) {
	src := newFS(t, 16384)
	workload.Generate(ctx, src, workload.Spec{Seed: 24, Files: 30, DirFanout: 6, MeanFileSize: 16 << 10})
	src.CreateSnapshot(ctx, "s")
	sv, _ := src.SnapshotView("s")

	drive1 := newTape(t, 0, 1)
	// The full stream is ~80 records; dying at 60 lands well into
	// Phase IV with several checkpoints already durable.
	drive1.InjectFaults(tape.FaultConfig{OfflineAfterRecords: 60})
	stats1, err := Dump(ctx, DumpOptions{
		View: sv, Sink: &DriveSink{Drive: drive1}, Label: "ckpt",
		ReadAhead: 8, CheckpointEvery: 2,
	})
	if !errors.Is(err, tape.ErrOffline) {
		t.Fatalf("dump error = %v, want drive offline", err)
	}
	if stats1.Checkpoint == nil || stats1.Checkpoint.LastIno == 0 {
		t.Fatalf("no usable checkpoint from interrupted dump: %+v", stats1.Checkpoint)
	}
	if stats1.FilesDumped == 0 {
		t.Fatal("offline hit before any file was dumped; raise OfflineAfterRecords")
	}

	// The drive comes back; what reached tape before the outage is
	// intact and readable.
	drive1.SetOffline(false)
	drive1.Flush(nil)

	// Resume onto a fresh drive. Phase IV must skip the files the
	// checkpoint vouches for.
	drive2 := newTape(t, 0, 1)
	stats2, err := Dump(ctx, DumpOptions{
		View: sv, Sink: &DriveSink{Drive: drive2}, Label: "ckpt",
		ReadAhead: 8, CheckpointEvery: 2, Resume: stats1.Checkpoint,
	})
	if err != nil {
		t.Fatalf("resumed dump: %v", err)
	}
	drive2.Flush(nil)
	if stats2.FilesSkipped == 0 {
		t.Fatal("resumed dump skipped nothing")
	}
	if stats2.Date != stats1.Date {
		t.Fatalf("resumed dump date %d != original %d", stats2.Date, stats1.Date)
	}

	// Restore stream 1 (torn tail tolerated), then stream 2 on top.
	dst := newFS(t, 16384)
	drive1.Rewind(nil)
	if _, err := Restore(ctx, RestoreOptions{
		FS: dst, Source: NewDriveSource(drive1, nil, 1),
		KernelIntegrated: true, Salvage: true,
	}); err != nil {
		t.Fatalf("restoring interrupted stream: %v", err)
	}
	drive2.Rewind(nil)
	if _, err := Restore(ctx, RestoreOptions{
		FS: dst, Source: NewDriveSource(drive2, nil, 1),
		KernelIntegrated: true,
	}); err != nil {
		t.Fatalf("restoring continuation stream: %v", err)
	}
	assertTreesEqual(t, digests(t, sv, "/"), digests(t, dst.ActiveView(), "/"))
	if err := dst.MustCheck(ctx); err != nil {
		t.Fatal(err)
	}
}

// cancelAfterSink cancels a context after n records reach the drive.
type cancelAfterSink struct {
	inner  *DriveSink
	n      int
	cancel context.CancelFunc
}

func (s *cancelAfterSink) WriteRecord(data []byte) error {
	if s.n--; s.n == 0 {
		s.cancel()
	}
	return s.inner.WriteRecord(data)
}

func (s *cancelAfterSink) NextVolume() error { return s.inner.NextVolume() }

// TestCancelMidDumpLeaksNoGoroutines: cancelling the context mid-dump
// returns promptly with the cancellation error plus a checkpoint, and
// the engine's goroutine count settles back to the baseline.
func TestCancelMidDumpLeaksNoGoroutines(t *testing.T) {
	src := newFS(t, 16384)
	workload.Generate(ctx, src, workload.Spec{Seed: 25, Files: 30, DirFanout: 6, MeanFileSize: 16 << 10})
	src.CreateSnapshot(ctx, "s")
	sv, _ := src.SnapshotView("s")

	before := runtime.NumGoroutine()
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	drive := newTape(t, 0, 1)
	sink := &cancelAfterSink{inner: &DriveSink{Drive: drive}, n: 20, cancel: cancel}
	stats, err := Dump(cctx, DumpOptions{
		View: sv, Sink: sink, Label: "cancel", ReadAhead: 8, CheckpointEvery: 2,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("dump error = %v, want context.Canceled", err)
	}
	if stats == nil || stats.Checkpoint == nil {
		t.Fatal("cancelled dump returned no checkpoint")
	}

	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines: %d before dump, %d after cancel", before, n)
	}
}
