// Benchmarks regenerating each table of the paper's evaluation. Every
// benchmark runs the corresponding experiment end-to-end on the
// discrete-event simulator and reports the virtual-time throughput
// figures next to Go's wall-clock numbers; the virtual metrics
// (suffixed _MBps and _cpu%) are the ones to compare with the paper.
// See EXPERIMENTS.md for the paper-vs-measured record and
// cmd/benchtables for the full table renderings.
package repro_test

import (
	"context"
	"strings"
	"testing"

	"repro/internal/bench"
)

// benchCfg keeps benchmark iterations quick while preserving the
// shape; use cmd/benchtables for bigger runs.
func benchCfg() bench.Config {
	cfg := bench.DefaultConfig()
	cfg.DataMB = 24
	cfg.AgeRounds = 4
	cfg.Verify = false
	return cfg
}

func BenchmarkTable1BlockStates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := bench.Table1()
		if strings.Contains(out, "MISMATCH") {
			b.Fatalf("Table 1 semantics violated:\n%s", out)
		}
	}
}

func BenchmarkTable2BasicBackupRestore(b *testing.B) {
	ctx := context.Background()
	cfg := benchCfg()
	var last *bench.BasicResult
	for i := 0; i < b.N; i++ {
		res, err := bench.RunBasic(ctx, cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.LogicalBackup.MBps(), "LB_MBps")
	b.ReportMetric(last.LogicalRestore.MBps(), "LR_MBps")
	b.ReportMetric(last.PhysicalBackup.MBps(), "PB_MBps")
	b.ReportMetric(last.PhysicalRestore.MBps(), "PR_MBps")
}

func BenchmarkTable3StageBreakdown(b *testing.B) {
	ctx := context.Background()
	cfg := benchCfg()
	var cpuLogical, cpuPhysical float64
	for i := 0; i < b.N; i++ {
		res, err := bench.RunBasic(ctx, cfg)
		if err != nil {
			b.Fatal(err)
		}
		cpuLogical = res.LogicalBackup.CPUUtil
		cpuPhysical = res.PhysicalBackup.CPUUtil
	}
	b.ReportMetric(100*cpuLogical, "logicalDump_cpu%")
	b.ReportMetric(100*cpuPhysical, "physicalDump_cpu%")
}

func benchParallel(b *testing.B, drives int) {
	ctx := context.Background()
	cfg := benchCfg()
	var last *bench.ParallelResult
	for i := 0; i < b.N; i++ {
		res, err := bench.RunParallel(ctx, cfg, drives)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.LogicalBackup.MBps(), "LB_MBps")
	b.ReportMetric(last.PhysicalBackup.MBps(), "PB_MBps")
	b.ReportMetric(last.PhysicalRestore.MBps(), "PR_MBps")
	b.ReportMetric(100*last.LogicalBackup.CPUUtil, "LB_cpu%")
}

func BenchmarkTable4Parallel2Drives(b *testing.B) { benchParallel(b, 2) }

func BenchmarkTable5Parallel4Drives(b *testing.B) { benchParallel(b, 4) }

func BenchmarkTable6ConcurrentVolumes(b *testing.B) {
	ctx := context.Background()
	cfg := benchCfg()
	var slowdown float64
	for i := 0; i < b.N; i++ {
		res, err := bench.RunConcurrentVolumes(ctx, cfg)
		if err != nil {
			b.Fatal(err)
		}
		slowdown = float64(res.HomeConcurrent.Elapsed) / float64(res.HomeIsolated.Elapsed)
	}
	b.ReportMetric(slowdown, "concurrent_slowdown_x")
}

func BenchmarkTable7Scaling(b *testing.B) {
	ctx := context.Background()
	cfg := benchCfg()
	var pts []bench.ScalingPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = bench.RunScaling(ctx, cfg, []int{1, 4})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[1].LogicalGBph, "logical4_GBph")
	b.ReportMetric(pts[1].PhysGBph, "physical4_GBph")
}

func benchAblation(b *testing.B, run func(context.Context, bench.Config) (*bench.AblationResult, error)) {
	ctx := context.Background()
	cfg := benchCfg()
	var speedup float64
	for i := 0; i < b.N; i++ {
		res, err := run(ctx, cfg)
		if err != nil {
			b.Fatal(err)
		}
		speedup = res.Speedup()
	}
	b.ReportMetric(speedup, "speedup_x")
}

func BenchmarkTable8NVRAMBypass(b *testing.B) { benchAblation(b, bench.RunNVRAMAblation) }

func BenchmarkTable9ReadAhead(b *testing.B) { benchAblation(b, bench.RunReadAheadAblation) }

func BenchmarkTable10ZeroCopy(b *testing.B) { benchAblation(b, bench.RunCopyAblation) }

func BenchmarkTable11Incremental(b *testing.B) {
	ctx := context.Background()
	cfg := benchCfg()
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := bench.RunIncremental(ctx, cfg)
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(res.IncrPhysicalBlocks) / float64(res.FullPhysicalBlocks)
	}
	b.ReportMetric(100*ratio, "incr_size_%of_full")
}

func BenchmarkTable12MirrorLag(b *testing.B) {
	ctx := context.Background()
	cfg := benchCfg()
	cfg.DataMB = 16
	var pts []bench.MirrorPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = bench.RunMirrorLag(ctx, cfg, []float64{4})
		if err != nil {
			b.Fatal(err)
		}
	}
	p := pts[0]
	b.ReportMetric(p.InitialSync.Seconds(), "initial_s")
	b.ReportMetric(p.SteadySync.Seconds(), "steady_s")
}
