// Integration test: a multi-week filer "saga" exercising every
// subsystem together — workload churn, snapshots, crashes with NVRAM
// replay, logical incremental chains, image backup, disk failure with
// RAID reconstruction, mirroring, and single-file recovery — with
// digest verification at every step.
package repro_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/logical"
	"repro/internal/mirror"
	"repro/internal/nvram"
	"repro/internal/physical"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/vdev"
	"repro/internal/wafl"
	"repro/internal/workload"
)

func TestFilerSaga(t *testing.T) {
	ctx := context.Background()
	cfg := core.DefaultConfig()
	cfg.Name = "saga"
	cfg.Simulate = true
	cfg.TapeDrives = 4
	cfg.BlocksPerDisk = 1024
	filer, err := core.NewFiler(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fsck := func(stage string) {
		t.Helper()
		if err := filer.FS.MustCheck(ctx); err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
	}

	// Week 1: users fill the filer.
	paths, err := workload.Generate(ctx, filer.FS, workload.Spec{
		Seed: 1, Files: 150, DirFanout: 10, MeanFileSize: 16 << 10, Symlinks: 5, Hardlinks: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	fsck("after generation")

	// Sunday night: level-0 logical dump to drive 0 and a full image
	// dump to drive 1, then verify both tapes.
	run := func(name string, fn func(c context.Context, p *sim.Proc) error) {
		t.Helper()
		var opErr error
		filer.Env.Spawn(name, func(p *sim.Proc) {
			opErr = fn(core.Proc(ctx, p), p)
		})
		filer.Env.Run()
		if opErr != nil {
			t.Fatalf("%s: %v", name, opErr)
		}
	}
	run("sunday-dumps", func(c context.Context, p *sim.Proc) error {
		if err := filer.LoadTape(c, 0); err != nil {
			return err
		}
		if err := filer.LoadTape(c, 1); err != nil {
			return err
		}
		if _, err := filer.LogicalDump(c, 0, 0, "", "sunday", nil); err != nil {
			return err
		}
		if _, err := filer.ImageDump(c, 1, "sunday-img", ""); err != nil {
			return err
		}
		return nil
	})
	run("verify-tapes", func(c context.Context, p *sim.Proc) error {
		filer.Tapes[0].Rewind(p)
		if err := filer.FS.CreateSnapshot(c, "verify-against"); err != nil {
			return err
		}
		defer filer.FS.DeleteSnapshot(c, "verify-against")
		sv, err := filer.FS.SnapshotView("verify-against")
		if err != nil {
			return err
		}
		vres, err := logical.Verify(c, logical.VerifyOptions{View: sv, Source: filer.Source(c, 0)})
		if err != nil {
			return err
		}
		if len(vres.Problems) != 0 {
			return fmt.Errorf("logical tape does not verify: %v", vres.Problems[0])
		}
		filer.Tapes[1].Rewind(p)
		if _, err := physical.VerifyStream(filer.Source(c, 1)); err != nil {
			return fmt.Errorf("image tape does not verify: %w", err)
		}
		return nil
	})

	// Monday: work happens, then the power fails mid-day. NVRAM replay
	// must recover everything since the last consistency point.
	mondayFile := "/monday/report.txt"
	if _, err := filer.FS.WriteFile(ctx, mondayFile, []byte("monday's numbers"), 0644); err != nil {
		t.Fatal(err)
	}
	if err := filer.FS.CP(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := filer.FS.WriteFile(ctx, "/monday/uncommitted.txt", []byte("in NVRAM only"), 0644); err != nil {
		t.Fatal(err)
	}
	filer.FS.Crash()
	remounted, err := wafl.Mount(ctx, filer.Vol, filer.NVRAM, wafl.Options{
		Costs: filer.Config.FSCosts, Env: filer.Env,
	})
	if err != nil {
		t.Fatalf("boot after power loss: %v", err)
	}
	filer.FS = remounted
	if _, err := filer.FS.ActiveView().ReadFile(ctx, "/monday/uncommitted.txt"); err != nil {
		t.Fatalf("NVRAM replay lost the uncommitted file: %v", err)
	}
	fsck("after crash recovery")

	// Tuesday: churn, then a level-1 incremental to drive 2.
	paths, err = workload.Age(ctx, filer.FS, paths, workload.AgeSpec{
		Seed: 2, Rounds: 2, ChurnPerRound: 40, MeanFileSize: 16 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	run("tuesday-incremental", func(c context.Context, p *sim.Proc) error {
		if err := filer.LoadTape(c, 2); err != nil {
			return err
		}
		stats, err := filer.LogicalDump(c, 2, 1, "", "tuesday", nil)
		if err != nil {
			return err
		}
		if stats.BaseDate == 0 {
			return fmt.Errorf("incremental has no base date")
		}
		return nil
	})

	// Wednesday: a disk dies. RAID keeps serving; rebuild onto a spare.
	wantBefore, err := workload.TreeDigest(ctx, filer.FS.ActiveView(), "/")
	if err != nil {
		t.Fatal(err)
	}
	group := filer.Vol.Groups()[0]
	if err := group.FailDisk(3); err != nil {
		t.Fatal(err)
	}
	gotDegraded, err := workload.TreeDigest(ctx, filer.FS.ActiveView(), "/")
	if err != nil {
		t.Fatalf("degraded reads failed: %v", err)
	}
	if diffs := workload.DiffDigests(wantBefore, gotDegraded); len(diffs) > 0 {
		t.Fatalf("degraded mode corrupted data: %v", diffs[0])
	}
	spare := vdev.New(filer.Env, "spare", cfg.BlocksPerDisk, cfg.DiskParams)
	if err := group.Rebuild(ctx, spare); err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	fsck("after disk rebuild")

	// Thursday: replicate to a standby volume, then fail over a file
	// read to it.
	standby := storage.NewMemDevice(filer.Vol.NumBlocks())
	m := mirror.New(filer.FS, filer.Vol, standby, nil, filer.Config.PhysCosts)
	if _, err := m.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	replica, err := wafl.Mount(ctx, standby.Clone(), nil, wafl.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sv, err := filer.FS.SnapshotView(m.LastSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	wantSnap, _ := workload.TreeDigest(ctx, sv, "/")
	gotRep, _ := workload.TreeDigest(ctx, replica.ActiveView(), "/")
	if diffs := workload.DiffDigests(wantSnap, gotRep); len(diffs) > 0 {
		t.Fatalf("standby diverged: %v", diffs[0])
	}

	// Friday: a user deletes Monday's report; recover it from the
	// Tuesday incremental tape (single-file restore).
	wantReport, err := filer.FS.ActiveView().ReadFile(ctx, mondayFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := filer.FS.RemovePath(ctx, mondayFile); err != nil {
		t.Fatal(err)
	}
	run("friday-recovery", func(c context.Context, p *sim.Proc) error {
		filer.Tapes[2].Rewind(p)
		stats, err := logical.Restore(c, logical.RestoreOptions{
			FS:               filer.FS,
			Source:           filer.Source(c, 2),
			Files:            []string{"monday/report.txt"},
			KernelIntegrated: true,
		})
		if err != nil {
			return err
		}
		if stats.FilesRestored != 1 {
			return fmt.Errorf("restored %d files, want 1", stats.FilesRestored)
		}
		return nil
	})
	got, err := filer.FS.ActiveView().ReadFile(ctx, mondayFile)
	if err != nil || !bytes.Equal(got, wantReport) {
		t.Fatalf("recovered report wrong: %v", err)
	}
	fsck("after the week")
}

func TestSagaCrossToolRestore(t *testing.T) {
	// A dump taken by one filer restores on a filer with completely
	// different geometry and NVRAM sizing — the portability property.
	ctx := context.Background()
	srcCfg := core.DefaultConfig()
	srcCfg.Name = "big"
	srcCfg.BlocksPerDisk = 1024
	src, err := core.NewFiler(ctx, srcCfg)
	if err != nil {
		t.Fatal(err)
	}
	workload.Generate(ctx, src.FS, workload.Spec{Seed: 3, Files: 50, DirFanout: 6, MeanFileSize: 8 << 10})
	if _, err := src.FS.WriteFile(ctx, "/x/y/z.txt", []byte("travels"), 0644); err != nil {
		t.Fatal(err)
	}
	if err := src.LoadTape(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := src.LogicalDump(ctx, 0, 0, "", "xfer", nil); err != nil {
		t.Fatal(err)
	}

	dstCfg := core.FilerConfig{
		Name: "small", RaidGroups: 1, DataDisksPerGroup: 3, BlocksPerDisk: 4096,
		TapeDrives: 1, NVRAMParams: nvram.Params{Size: 1 << 20},
	}
	dst, err := core.NewFiler(ctx, dstCfg)
	if err != nil {
		t.Fatal(err)
	}
	dst.Tapes[0] = src.Tapes[0]
	if _, err := dst.LogicalRestore(ctx, 0, "/", false, nil); err != nil {
		t.Fatal(err)
	}
	got, err := dst.FS.ActiveView().ReadFile(ctx, "/x/y/z.txt")
	if err != nil || string(got) != "travels" {
		t.Fatalf("cross-geometry restore: %q, %v", got, err)
	}
	want, _ := workload.TreeDigest(ctx, src.FS.ActiveView(), "/")
	gotD, _ := workload.TreeDigest(ctx, dst.FS.ActiveView(), "/")
	if diffs := workload.DiffDigests(want, gotD); len(diffs) > 0 {
		t.Fatalf("trees differ: %v", diffs[0])
	}
}
