// Property test for the pooled data path: dump streams must be
// byte-identical with buffer pooling on and off. Any aliasing bug —
// a layer retaining or scribbling on a recycled buffer — shows up as
// a stream diff here, for both engines, full and incremental.
package repro_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"repro/internal/bufpool"
	"repro/internal/logical"
	"repro/internal/physical"
	"repro/internal/storage"
	"repro/internal/wafl"
	"repro/internal/workload"
)

// captureSink records every tape record, copying because the writer
// recycles its record buffers.
type captureSink struct {
	stream []byte
}

func (s *captureSink) WriteRecord(data []byte) error {
	s.stream = append(s.stream, data...)
	return nil
}

func (s *captureSink) NextVolume() error { return fmt.Errorf("no next volume") }

// buildAndDump deterministically builds a filesystem, mutates it
// between two snapshots, and returns the four dump streams: logical
// full + level 1, physical full + incremental.
func buildAndDump(t *testing.T) [4][]byte {
	t.Helper()
	ctx := context.Background()
	dev := storage.NewMemDevice(4096)
	fs, err := wafl.Mkfs(ctx, dev, nil, wafl.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := workload.Generate(ctx, fs, workload.Spec{
		Seed: 7, Files: 60, DirFanout: 6, MeanFileSize: 12 << 10, Symlinks: 3, Hardlinks: 2,
	}); err != nil {
		t.Fatal(err)
	}
	if err := fs.CreateSnapshot(ctx, "base"); err != nil {
		t.Fatal(err)
	}
	if _, err := workload.Generate(ctx, fs, workload.Spec{
		Seed: 8, Files: 20, DirFanout: 4, MeanFileSize: 8 << 10,
	}); err != nil {
		t.Fatal(err)
	}
	if err := fs.CreateSnapshot(ctx, "tip"); err != nil {
		t.Fatal(err)
	}

	var out [4][]byte
	dates := logical.NewDumpDates()
	for i, level := range []int{0, 1} {
		view, err := fs.SnapshotView("tip")
		if err != nil {
			t.Fatal(err)
		}
		sink := &captureSink{}
		if _, err := logical.Dump(ctx, logical.DumpOptions{
			View: view, Level: level, Dates: dates, FSID: "pool", Label: "pooltest",
			Sink: sink, ReadAhead: 8,
		}); err != nil {
			t.Fatalf("logical level %d: %v", level, err)
		}
		out[i] = sink.stream
	}
	for i, base := range []string{"", "base"} {
		sink := &captureSink{}
		if _, err := physical.Dump(ctx, physical.DumpOptions{
			FS: fs, Vol: dev, SnapName: "tip", BaseSnapName: base, Sink: sink,
		}); err != nil {
			t.Fatalf("physical base %q: %v", base, err)
		}
		out[2+i] = sink.stream
	}
	return out
}

func TestPoolingDoesNotChangeStreams(t *testing.T) {
	if !bufpool.Enabled() {
		t.Fatal("pooling should start enabled")
	}
	pooled := buildAndDump(t)

	bufpool.SetEnabled(false)
	defer bufpool.SetEnabled(true)
	plain := buildAndDump(t)

	names := []string{"logical full", "logical level 1", "physical full", "physical incremental"}
	for i := range pooled {
		if len(pooled[i]) == 0 {
			t.Fatalf("%s: empty stream", names[i])
		}
		if !bytes.Equal(pooled[i], plain[i]) {
			t.Errorf("%s: stream differs with pooling on vs off (%d vs %d bytes)",
				names[i], len(pooled[i]), len(plain[i]))
		}
	}
}
